"""The multi-tenant campaign service.

:class:`CampaignService` multiplexes many simultaneous hierarchical-
checking campaigns onto one shared budget pool and a bounded set of
shard-pool slots.  The design keeps three properties that the rest of
the codebase already guarantees for solo campaigns, and extends them
across tenants:

**Bit-identity.**  Each campaign runs on its *own* shard pool and its
own private round-accounting ledger, stepped one round at a time
(``session.run(source, max_rounds=1)``).  Interleaving campaigns
therefore cannot perturb any campaign's selections, budget trajectory,
beliefs, or journal bytes: every campaign's outcome is byte-identical
to the same campaign run solo through
:func:`~repro.engine.runner.run_parallel_hc_session`.  The shared
:class:`~repro.engine.ledger.BudgetLedger` holds only *deposits* —
whole-campaign reservations — so cross-tenant accounting never touches
per-round arithmetic.

**Backpressure.**  Admission is deposit-based and fail-fast (see
:mod:`~repro.service.admission`): a submission either secures its full
remaining budget on the pool, possibly shedding strictly
lower-priority pending work, or is rejected with
:class:`~repro.service.errors.ServiceSaturatedError` leaving no state
behind.

**Fault isolation.**  Chaos plans and supervision policies are
per-campaign, so one tenant's injected faults live entirely inside
that tenant's pool.  A round that raises (e.g.
:class:`~repro.engine.supervisor.ShardFailureError` after the restart
budget is spent) or overruns the service's round deadline costs the
campaign a *strike*: its runtime is torn down (pool closed, tracker
closed so no reservation leaks) and the campaign rebuilds from its
journal on its next turn.  ``max_strikes`` strikes quarantine it —
runtime gone, deposit intact — without ever touching another tenant's
rounds or the shared ledger's commitments.

Detach/reattach rides the same machinery: a detach is a voluntary
teardown at a round boundary, and an attach (same service or a fresh
one after a restart) rebuilds pool + session from the journal via
:func:`~repro.engine.runner.resume_parallel_session`, rewinds the
answer source from the checkpointed source state, and continues
byte-identically.

**Streamed tenants.**  A spec carrying a
:class:`~repro.stream.runtime.StreamSpec` runs as a
:class:`~repro.stream.runtime.StreamingCampaign`: each service step
consumes ``events_per_step`` delivery slots instead of one checking
round, and the aggregate stream backlog is fed back into admission
control (:meth:`AdmissionController.observe_backlog`), shrinking the
effective queue under sustained pressure.  Strikes, detach/reattach,
and post-restart attach all work unchanged — the streaming runtime
journals its cursor/watermark/builder state on every checkpoint, so a
rebuild resumes exactly-once.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.serialization import SerializationError, read_journal
from ..engine.ledger import BudgetLedger
from ..engine.runner import ParallelCampaignRunner, resume_parallel_session
from ..engine.supervisor import SupervisionPolicy
from ..obs import OBS, latency_report
from ..simulation.faults import FaultyExpertPanel
from ..stream.arrivals import generate_event_stream, make_arrivals
from ..stream.runtime import StreamingCampaign
from .admission import AdmissionController, TenantQuota
from .campaign import (
    CampaignHandle,
    CampaignRecord,
    CampaignSpec,
    CampaignStatus,
    resolve_config,
)
from .errors import (
    CampaignQuarantinedError,
    CampaignStateError,
    ServiceError,
    ServiceSaturatedError,
    UnknownCampaignError,
)
from .scheduler import WeightedFairScheduler


class _StatsView:
    """Adapt a counters-dict thunk to the ``as_dict()`` shape that
    :meth:`Observability.publish_deltas` expects, while persisting long
    enough to carry the last-published snapshot between calls."""

    def __init__(self, thunk):
        self._thunk = thunk

    def as_dict(self) -> dict:
        return self._thunk()


def _completed_rounds(session) -> int:
    """Checking rounds completed so far (``history`` also holds the
    initialization record, which is not a served round)."""
    return max(0, len(session.history) - 1)


@dataclass(frozen=True)
class ServicePolicy:
    """Service-wide knobs (per-campaign overrides live on the spec).

    Parameters
    ----------
    slots:
        Maximum campaigns with a live runtime (shard pool) at once;
        the rest wait in the admission queue.
    queue_limit:
        Bound on the pending queue; beyond it, admission sheds or
        rejects.
    round_deadline:
        Wall-clock budget for one campaign round, in seconds.  An
        overrun costs a strike (the round itself, being journaled, is
        not lost).  ``None`` disables the check.
    max_strikes:
        Fault strikes before a campaign is quarantined.
    supervision:
        Default :class:`~repro.engine.supervisor.SupervisionPolicy`
        for campaign pools (a spec's ``policy`` wins).
    """

    slots: int = 4
    queue_limit: int = 16
    round_deadline: float | None = None
    max_strikes: int = 3
    supervision: SupervisionPolicy | None = None

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("slots must be at least 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.round_deadline is not None and self.round_deadline <= 0:
            raise ValueError("round_deadline must be positive")
        if self.max_strikes < 1:
            raise ValueError("max_strikes must be at least 1")


class CampaignService:
    """A long-lived host for many tenants' campaigns.

    Parameters
    ----------
    budget_pool:
        Total budget of the shared ledger backing every deposit.
        Ignored when an existing ``ledger`` is supplied.
    policy:
        :class:`ServicePolicy`; defaults apply when omitted.
    quotas, default_quota:
        Per-tenant :class:`~repro.service.admission.TenantQuota`
        overrides and the fallback quota.
    journal_root:
        Directory under which campaigns without an explicit
        ``config.journal_path`` journal (``journal_root/tenant/name
        .jsonl``).
    ledger:
        Optional pre-existing shared ledger (e.g. one also backing
        campaigns outside the service).

    The service is synchronous and single-threaded by design: callers
    drive it with :meth:`step` / :meth:`run_until_idle`, which makes
    every schedule — and therefore every test — deterministic.
    """

    def __init__(
        self,
        budget_pool: float | None = None,
        *,
        policy: ServicePolicy | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        journal_root: str | Path | None = None,
        ledger: BudgetLedger | None = None,
    ):
        if ledger is None:
            if budget_pool is None:
                raise ValueError("pass budget_pool or an existing ledger")
            ledger = BudgetLedger(float(budget_pool))
        self.ledger = ledger
        self.policy = policy or ServicePolicy()
        self._admission = AdmissionController(
            ledger,
            queue_limit=self.policy.queue_limit,
            quotas=quotas,
            default_quota=default_quota,
        )
        self._journal_root = (
            Path(journal_root) if journal_root is not None else None
        )
        self._records: dict[str, CampaignRecord] = {}
        self._pending: list[CampaignRecord] = []
        self._active: list[CampaignRecord] = []
        self._scheduler = WeightedFairScheduler()
        self._closed = False
        self._steps = 0
        self._completed = 0
        # Observability bookkeeping (only touched when OBS.enabled):
        # per-campaign end-of-last-step marks for scheduler-wait, and a
        # persistent view of the admission counters so delta publishing
        # never double-counts.
        self._obs_last_step: dict[str, float] = {}
        self._obs_admission = _StatsView(lambda: self._admission.counters)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> CampaignHandle:
        """Admit a fresh campaign; raises before any state changes when
        the tenant is over quota or the service is saturated."""
        self._ensure_open()
        campaign_id = spec.campaign_id
        existing = self._records.get(campaign_id)
        if existing is not None and existing.status is not CampaignStatus.SHED:
            raise CampaignStateError(
                f"campaign {campaign_id!r} is already registered "
                f"({existing.status.value})"
            )
        config, journal_path = resolve_config(spec, self._journal_root)
        if journal_path.exists():
            raise CampaignStateError(
                f"journal {journal_path} already exists; use attach() to "
                "re-admit an existing campaign"
            )
        weight = (
            float(spec.weight)
            if spec.weight is not None
            else self._admission.quota_for(spec.tenant).weight
        )
        record = CampaignRecord(
            spec=spec,
            config=config,
            journal_path=journal_path,
            weight=weight,
        )
        self._shed(self._admit_with_hint(record))
        self._records[campaign_id] = record
        self._pending.append(record)
        return CampaignHandle(record)

    def attach(self, spec: CampaignSpec) -> CampaignHandle:
        """(Re-)admit a campaign whose journal already exists.

        Covers both flavors of reattachment: a campaign this service
        instance detached or quarantined (deposit still open — it just
        rejoins the queue), and a journal from *before a service
        restart* (the spec re-describes it; spending already on the
        journal is committed to the fresh pool and only the remainder
        is deposited).
        """
        self._ensure_open()
        campaign_id = spec.campaign_id
        existing = self._records.get(campaign_id)
        if existing is not None:
            if existing.status not in (
                CampaignStatus.DETACHED,
                CampaignStatus.QUARANTINED,
            ):
                raise CampaignStateError(
                    f"campaign {campaign_id!r} is {existing.status.value}; "
                    "only detached or quarantined campaigns can reattach"
                )
            # Adopt the caller's fresh spec (it may carry a repaired
            # source factory or a new chaos/supervision setting) but
            # keep the admitted identity: resolved config, journal,
            # deposit and base_spent all stay.
            existing.spec = spec
            if spec.weight is not None:
                existing.weight = float(spec.weight)
            existing.strikes = 0
            existing.error = None
            existing.status = CampaignStatus.PENDING
            self._pending.append(existing)
            return CampaignHandle(existing)
        config, journal_path = resolve_config(spec, self._journal_root)
        if not journal_path.exists():
            raise UnknownCampaignError(
                f"no journal at {journal_path} to attach"
            )
        base_spent, journaled = self._read_attach_state(journal_path)
        if journaled is not None and (
            journaled.get("tenant") != spec.tenant
            or journaled.get("name") != spec.name
        ):
            raise CampaignStateError(
                f"journal {journal_path} belongs to "
                f"{journaled.get('tenant')}/{journaled.get('name')}, "
                f"not {campaign_id}"
            )
        weight = (
            float(spec.weight)
            if spec.weight is not None
            else float(
                (journaled or {}).get(
                    "weight", self._admission.quota_for(spec.tenant).weight
                )
            )
        )
        record = CampaignRecord(
            spec=spec,
            config=config,
            journal_path=journal_path,
            weight=weight,
            base_spent=base_spent,
            launched=True,
        )
        self._shed(self._admit_with_hint(record))
        self._records[campaign_id] = record
        self._pending.append(record)
        return CampaignHandle(record)

    def recover(
        self,
        journal_root: "str | Path | None" = None,
        *,
        specs=None,
        spec_factory=None,
        strict: bool = True,
    ):
        """Rebuild the service's campaigns from a journal directory.

        Scans every ``*.jsonl`` under ``journal_root`` (defaulting to
        this service's own root), salvages each journal through
        :func:`~repro.storage.integrity.recover_journal`, re-attaches
        every campaign whose verified prefix still holds a checkpoint,
        resubmits the ones damaged into their bootstrap region (their
        remains preserved in ``.damaged`` sidecars), and finishes with
        a strict ledger audit.  Returns a
        :class:`~repro.service.recovery.RecoveryReport`; see
        :mod:`~repro.service.recovery` for the full semantics.
        """
        self._ensure_open()
        from .recovery import recover_service

        return recover_service(
            self,
            journal_root,
            specs=specs,
            spec_factory=spec_factory,
            strict=strict,
        )

    def _admit_with_hint(self, record: CampaignRecord) -> list[CampaignRecord]:
        """Admit through the controller, stamping a retry hint on
        queue-saturation rejections (ledger exhaustion gets none: only
        a completion can free deposited money, and the scheduler cannot
        predict one)."""
        try:
            return self._admission.admit(record, self._pending)
        except ServiceSaturatedError as error:
            if error.reason == "queue":
                error.retry_after_rounds = self._retry_after_rounds()
            raise

    def _retry_after_rounds(self) -> int:
        """Scheduler-virtual-time estimate of when a retry can succeed.

        The backlog clears once every active campaign has caught up to
        the current maximum ``pass`` (``(max_pass - pass) * weight``
        rounds each) and the queue ahead of the caller has drained —
        approximated as one full weighted cycle per queued campaign
        plus one for the caller itself.
        """
        entries = self._scheduler.snapshot()
        catch_up = 0
        cycle = 1
        if entries:
            max_pass = max(entry[1] for entry in entries)
            catch_up = sum(
                math.ceil((max_pass - pass_value) * weight)
                for _key, pass_value, weight in entries
            )
            cycle = sum(
                max(1, round(weight)) for _key, _pass, weight in entries
            )
        return max(1, catch_up + cycle * (len(self._pending) + 1))

    def detach(self, campaign: "CampaignHandle | str") -> None:
        """Release a campaign's runtime at the current round boundary.

        The deposit and the journal stay; :meth:`attach` (here or on a
        future service instance) continues the campaign
        byte-identically.
        """
        self._ensure_open()
        record = self._resolve(campaign)
        if record.status is CampaignStatus.ACTIVE:
            self._teardown_runtime(record)
            self._scheduler.remove(record.campaign_id)
            self._active.remove(record)
        elif record.status is CampaignStatus.PENDING:
            self._pending.remove(record)
        else:
            raise CampaignStateError(
                f"campaign {record.campaign_id!r} is "
                f"{record.status.value}; nothing to detach"
            )
        record.status = CampaignStatus.DETACHED

    # ------------------------------------------------------------------
    # the step loop
    # ------------------------------------------------------------------

    def step(self) -> dict | None:
        """Run one round of the next scheduled campaign.

        Returns a small info dict (campaign id, wall latency, whether
        it finished, the error if it struck) or ``None`` when nothing
        is runnable — the service is idle.
        """
        self._ensure_open()
        self._activate_pending()
        campaign_id = self._scheduler.peek()
        if campaign_id is None:
            return None
        record = self._records[campaign_id]
        stream = record.runtime.get("stream")
        started = time.perf_counter()
        if OBS.enabled:
            # Everything the round records below carries this tenant
            # label; scheduler-wait is the gap since this campaign's
            # previous round ended (time lost to other tenants' turns).
            OBS.tenant = record.spec.tenant
            waited_from = self._obs_last_step.get(campaign_id)
            if waited_from is not None:
                OBS.observe_phase("scheduler-wait", started - waited_from)
        error: BaseException | None = None
        try:
            with OBS.phase("round", campaign=campaign_id):
                if stream is not None:
                    stream.run(max_events=stream.spec.events_per_step)
                else:
                    record.runtime["session"].run(
                        record.runtime["source"], max_rounds=1
                    )
        except Exception as exc:
            error = exc
        latency = time.perf_counter() - started
        record.latencies.append(latency)
        self._scheduler.charge(campaign_id)
        self._steps += 1
        self._feed_backlog()
        if OBS.enabled:
            OBS.tenant = ""
            self._obs_last_step[campaign_id] = time.perf_counter()
            OBS.registry.counter(
                "repro_service_rounds_total",
                "Rounds stepped by the service",
                labels=("tenant",),
            ).labels(tenant=record.spec.tenant).inc()
            OBS.publish_gauges(
                "repro_service",
                {
                    "active_campaigns": len(self._active),
                    "pending_campaigns": len(self._pending),
                    "completed_campaigns": self._completed,
                    "stream_backlog": self._admission.backlog,
                },
            )
            OBS.publish_deltas("repro_admission", self._obs_admission)
        info = {
            "campaign": campaign_id,
            "latency": latency,
            "finished": False,
            "error": None,
        }
        if error is not None:
            info["error"] = f"{type(error).__name__}: {error}"
            self._strike(record, info["error"])
            return info
        if stream is not None:
            session = stream.session
            record.rounds = (
                _completed_rounds(session) if session is not None else 0
            )
            record.spent = float(stream.spent_budget)
            finished = stream.finished
        else:
            session = record.runtime["session"]
            record.rounds = _completed_rounds(session)
            record.spent = float(session.spent_budget)
            finished = session.is_finished
        if finished:
            info["finished"] = True
            self._finalize(record)
        elif (
            self.policy.round_deadline is not None
            and latency > self.policy.round_deadline
        ):
            # The round itself committed (and is journaled) — only the
            # runtime is torn down, so a slow tenant degrades to
            # rebuild-per-round and eventually quarantine instead of
            # stalling everyone behind it.
            info["error"] = (
                f"round took {latency:.3f}s "
                f"(deadline {self.policy.round_deadline}s)"
            )
            self._strike(record, info["error"])
        return info

    def run_until_idle(self, max_steps: int | None = None) -> int:
        """Step until no campaign is runnable; returns rounds run."""
        steps = 0
        while max_steps is None or steps < max_steps:
            if self.step() is None:
                break
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # lifecycle internals
    # ------------------------------------------------------------------

    def _activate_pending(self) -> None:
        while self._pending and len(self._active) < self.policy.slots:
            record = self._pending.pop(0)
            try:
                if record.launched:
                    self._reattach_runtime(record)
                else:
                    self._launch_runtime(record)
            except Exception as exc:
                record.error = f"{type(exc).__name__}: {exc}"
                record.strikes += 1
                if record.strikes >= self.policy.max_strikes:
                    record.status = CampaignStatus.QUARANTINED
                else:
                    self._pending.append(record)
                continue
            record.status = CampaignStatus.ACTIVE
            self._active.append(record)
            self._scheduler.add(record.campaign_id, record.weight)

    def _launch_runtime(self, record: CampaignRecord) -> None:
        spec = record.spec
        record.journal_path.parent.mkdir(parents=True, exist_ok=True)
        if spec.stream is not None:
            campaign = StreamingCampaign(
                self._stream_events(spec),
                spec.dataset.split_crowd(spec.stream.theta)[0],
                float(record.config.budget),
                spec=spec.stream,
                journal_path=record.journal_path,
                journal_metadata=[record.identity_record()],
                k=record.config.k,
                retry_policy=record.config.retry_policy,
                trust_policy=record.config.trust_policy,
            )
            record.runtime = {"stream": campaign}
            record.launched = True
            return
        runner = ParallelCampaignRunner(
            spec.dataset,
            record.config,
            jobs=spec.jobs,
            answer_source=spec.build_source(),
            inline=spec.inline,
            policy=spec.policy or self.policy.supervision,
            chaos=spec.chaos,
            extra_journal_records=[record.identity_record()],
        )
        prepared = runner.launch()
        record.runtime = {
            "pool": prepared["pool"],
            "session": prepared["session"],
            "source": prepared["source"],
            "tracker": prepared["tracker"],
        }
        record.launched = True

    @staticmethod
    def _stream_events(spec: CampaignSpec):
        """Regenerate a streamed campaign's event log from its spec.

        Pure data from (dataset, stream spec) — the same log every
        time, which is what lets reattach resume against it."""
        stream = spec.stream
        return generate_event_stream(
            spec.dataset,
            theta=stream.theta,
            votes_per_fact=stream.votes_per_fact,
            arrivals=make_arrivals(stream.arrival, stream.rate),
            seed=stream.seed,
            churn_rate=stream.churn,
            window=stream.window,
        )

    def _reattach_runtime(self, record: CampaignRecord) -> None:
        spec = record.spec
        if spec.stream is not None:
            campaign = StreamingCampaign.resume(
                record.journal_path,
                self._stream_events(spec),
                retry_policy=record.config.retry_policy,
            )
            record.runtime = {"stream": campaign}
            session = campaign.session
            record.rounds = (
                _completed_rounds(session) if session is not None else 0
            )
            record.spent = float(campaign.spent_budget)
            return
        session, pool = resume_parallel_session(
            record.journal_path,
            inline=spec.inline,
            retry_policy=record.config.retry_policy,
            policy=spec.policy or self.policy.supervision,
            chaos=spec.chaos,
        )
        source = spec.build_source()
        if record.config.faults is not None:
            source = FaultyExpertPanel(source, record.config.faults)
        record.runtime = {
            "pool": pool,
            "session": session,
            "source": source,
            "tracker": session.budget_tracker,
        }
        record.rounds = _completed_rounds(session)
        record.spent = float(session.spent_budget)

    def _teardown_runtime(self, record: CampaignRecord) -> None:
        runtime, record.runtime = record.runtime, None
        if runtime is None:
            return
        stream = runtime.get("stream")
        if stream is not None:
            # The streaming runtime is inline: no pool to close, and
            # its budget is private, so there is no reservation to
            # release on the shared ledger.
            session = stream.session
            record.rounds = (
                _completed_rounds(session) if session is not None else 0
            )
            record.spent = float(stream.spent_budget)
            return
        session = runtime["session"]
        record.rounds = _completed_rounds(session)
        record.spent = float(session.spent_budget)
        # Order matters: closing the tracker releases any reservation
        # the aborted round left open on the campaign's private ledger,
        # so the audit below only ever reports true leaks.
        runtime["tracker"].close()
        runtime["pool"].close()
        leaks = runtime["tracker"].ledger.audit()
        record.leaked_reservations += len(leaks)

    def _strike(self, record: CampaignRecord, reason: str) -> None:
        record.strikes += 1
        record.error = reason
        if OBS.enabled:
            OBS.registry.counter(
                "repro_service_strikes_total",
                "Fault strikes charged to campaigns",
                labels=("tenant",),
            ).labels(tenant=record.spec.tenant).inc()
        self._teardown_runtime(record)
        self._scheduler.remove(record.campaign_id)
        self._active.remove(record)
        if record.strikes >= self.policy.max_strikes:
            # Deposit and journal are untouched: an operator can
            # attach() later; other tenants never notice.
            record.status = CampaignStatus.QUARANTINED
        else:
            record.status = CampaignStatus.PENDING
            self._pending.append(record)

    def _finalize(self, record: CampaignRecord) -> None:
        stream = record.runtime.get("stream")
        if stream is not None:
            record.result = stream.result()
        else:
            record.result = record.runtime["session"].result()
        self._teardown_runtime(record)
        self._scheduler.remove(record.campaign_id)
        self._active.remove(record)
        self._admission.settle(
            record.campaign_id, record.spent - record.base_spent
        )
        record.status = CampaignStatus.COMPLETED
        self._completed += 1

    def _shed(self, victims: list[CampaignRecord]) -> None:
        for victim in victims:
            self._pending.remove(victim)
            victim.status = CampaignStatus.SHED

    def _feed_backlog(self) -> None:
        """Report the streamed campaigns' aggregate backlog to
        admission control (zero when none are streaming)."""
        depth = sum(
            record.runtime["stream"].backlog
            for record in self._active
            if record.runtime is not None and "stream" in record.runtime
        )
        self._admission.observe_backlog(depth)

    # ------------------------------------------------------------------
    # introspection / teardown
    # ------------------------------------------------------------------

    def handle(self, campaign_id: str) -> CampaignHandle:
        return CampaignHandle(self._resolve(campaign_id))

    def status(self, campaign: "CampaignHandle | str") -> CampaignStatus:
        return self._resolve(campaign).status

    def result(self, campaign: "CampaignHandle | str"):
        record = self._resolve(campaign)
        if record.status is CampaignStatus.QUARANTINED:
            raise CampaignQuarantinedError(
                f"campaign {record.campaign_id!r} was quarantined: "
                f"{record.error}"
            )
        if record.result is None:
            raise CampaignStateError(
                f"campaign {record.campaign_id!r} has not completed "
                f"({record.status.value})"
            )
        return record.result

    def stats(self) -> dict:
        """A JSON-compatible service snapshot (stats endpoint/bench)."""
        return {
            "steps": self._steps,
            "completed": self._completed,
            "active": len(self._active),
            "pending": len(self._pending),
            "stream_backlog": self._admission.backlog,
            "effective_queue_limit": self._admission.effective_queue_limit,
            "admission": self._admission.counters,
            "ledger": self.ledger.as_dict(),
            "campaigns": {
                campaign_id: {
                    "tenant": record.spec.tenant,
                    "status": record.status.value,
                    "rounds": record.rounds,
                    "strikes": record.strikes,
                    "spent": record.spent,
                    "leaked_reservations": record.leaked_reservations,
                }
                for campaign_id, record in sorted(self._records.items())
            },
        }

    def round_latencies(self) -> list[float]:
        """Every stepped round's wall latency (percentile fodder)."""
        latencies: list[float] = []
        for record in self._records.values():
            latencies.extend(record.latencies)
        return latencies

    def health_summary(self) -> str:
        """One-line service health, sourced from the metrics registry.

        Used by ``repro serve --health-every N``.  The p95 round
        latency comes from the ``repro_phase_seconds{phase="round"}``
        histogram; with observability disabled it reads 0 and the line
        still renders the campaign/shed counts from admission state.
        """
        shed = int(self._admission.counters.get("shed", 0))
        p95 = 0.0
        for row in latency_report(OBS.registry)["phases"]:
            if row["phase"] == "round":
                p95 = row["p95"]
                break
        return (
            f"health: active={len(self._active)} "
            f"queued={len(self._pending)} "
            f"completed={self._completed} shed={shed} "
            f"p95_round={p95 * 1000:.1f}ms"
        )

    def close(self) -> None:
        """Tear everything down, returning unfinished deposits.

        Idempotent.  Committed money (completed campaigns, pre-restart
        ``base_spent``) stays committed; every open deposit of a
        non-completed campaign is released so the pool ends with
        ``open_reservations == 0``.
        """
        if self._closed:
            return
        for record in list(self._active):
            self._teardown_runtime(record)
            self._scheduler.remove(record.campaign_id)
            self._active.remove(record)
            record.status = CampaignStatus.DETACHED
        self._pending.clear()
        for record in self._records.values():
            if self._admission.has_deposit(record.campaign_id):
                self._admission.forfeit(record.campaign_id)
        self._closed = True

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _resolve(self, campaign: "CampaignHandle | str") -> CampaignRecord:
        campaign_id = (
            campaign.campaign_id
            if isinstance(campaign, CampaignHandle)
            else str(campaign)
        )
        try:
            return self._records[campaign_id]
        except KeyError:
            raise UnknownCampaignError(campaign_id) from None

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("the campaign service is closed")

    @staticmethod
    def _read_attach_state(journal_path: Path) -> tuple[float, dict | None]:
        """Base spending + journaled tenant identity for an attach."""
        records = read_journal(journal_path)
        checkpoints = [
            record
            for record in records
            if record.get("kind") == "checkpoint"
        ]
        if checkpoints:
            base_spent = float(checkpoints[-1]["session"]["budget_spent"])
        elif any(
            record.get("kind") == "stream_checkpoint" for record in records
        ):
            # A streamed campaign killed in its bootstrap phase: the
            # checking session does not exist yet, so nothing of the
            # budget is spent.
            base_spent = 0.0
        else:
            raise SerializationError(
                f"journal {journal_path} has no intact checkpoint"
            )
        tenant_records = [
            record for record in records if record.get("kind") == "tenant"
        ]
        return base_spent, tenant_records[-1] if tenant_records else None
