"""Error taxonomy of the multi-tenant campaign service.

All service errors derive from :class:`ServiceError` so callers can
catch the family; the admission-control subset additionally derives
from the specific condition they report:

* :class:`ServiceSaturatedError` — backpressure.  The bounded admission
  queue is full of equal-or-higher-priority work, or the shared
  :class:`~repro.engine.ledger.BudgetLedger` cannot cover the
  campaign's deposit.  The submission was *rejected*, nothing was
  admitted, and no ledger state changed.
* :class:`QuotaExceededError` — the submitting tenant is over one of
  its own limits (concurrent campaigns, admitted budget), independent
  of how loaded the service is.
* :class:`UnknownCampaignError` / :class:`CampaignStateError` — client
  protocol misuse: addressing a campaign the service does not know, or
  driving one through an illegal state transition (e.g. detaching a
  campaign that already completed).
"""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class of every campaign-service error."""


class ServiceSaturatedError(ServiceError):
    """Admission rejected: the service is at capacity.

    ``reason`` distinguishes the saturated resource: ``"queue"`` (the
    bounded admission queue) or ``"ledger"`` (the shared budget pool
    cannot cover the deposit).

    ``retry_after_rounds`` — when the service can estimate it — is the
    number of scheduler rounds after which a retry has a realistic
    chance of admission: the virtual-time catch-up of the backlog plus
    one full weighted cycle of the queue ahead of the caller.  ``0``
    means no estimate (e.g. the pool itself is exhausted and only a
    completion can free it).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        retry_after_rounds: int = 0,
    ):
        super().__init__(message)
        self.reason = reason
        self.retry_after_rounds = int(retry_after_rounds)


class QuotaExceededError(ServiceError):
    """Admission rejected: the tenant is over its own quota."""


class UnknownCampaignError(ServiceError, KeyError):
    """The addressed campaign is not registered with the service."""


class CampaignStateError(ServiceError):
    """The campaign cannot make the requested state transition."""


class CampaignQuarantinedError(CampaignStateError):
    """The addressed campaign was quarantined after repeated failures."""
