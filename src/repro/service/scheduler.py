"""Weighted-fair round scheduling across admitted campaigns.

The service interleaves many campaigns onto one step loop; picking the
next campaign round-robin would give a 10×-budget campaign the same
service rate as a tiny one, and picking greedily would starve everyone
behind a long campaign.  :class:`WeightedFairScheduler` implements
classic *stride scheduling*: each campaign carries a virtual-time
``pass`` value, the campaign with the minimum pass runs next, and a
completed round advances its pass by ``1 / weight``.  Over any window,
campaign service rates converge to the ratio of their weights, and a
weight-2 tenant gets twice the rounds of a weight-1 tenant.

Determinism is load-bearing here — the service's bit-identity tests
replay whole multi-tenant schedules — so ties on ``pass`` break on
admission order (a monotone sequence number), never on dict order or
clocks, and new arrivals start at the current minimum pass (they
neither starve the incumbents nor wait behind virtual time they never
consumed).
"""

from __future__ import annotations


class WeightedFairScheduler:
    """Stride scheduler over campaign keys.

    The service owns the lifecycle: :meth:`add` on activation,
    :meth:`peek` to pick the next round's campaign, :meth:`charge`
    after the round ran, :meth:`remove` on completion / detach /
    quarantine.
    """

    def __init__(self) -> None:
        # key -> [pass_value, admission_seq, weight]
        self._entries: dict[str, list] = {}
        self._next_seq = 0

    def add(self, key: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("scheduling weight must be positive")
        if key in self._entries:
            raise ValueError(f"campaign {key!r} is already scheduled")
        start = min(
            (entry[0] for entry in self._entries.values()), default=0.0
        )
        self._entries[key] = [start, self._next_seq, float(weight)]
        self._next_seq += 1

    def remove(self, key: str) -> None:
        if key not in self._entries:
            raise KeyError(key)
        del self._entries[key]

    def charge(self, key: str) -> None:
        """Advance ``key``'s virtual time by one round's stride."""
        entry = self._entries[key]
        entry[0] += 1.0 / entry[2]

    def peek(self) -> str | None:
        """The key that should run the next round (``None`` if empty)."""
        if not self._entries:
            return None
        return min(
            self._entries,
            key=lambda key: (self._entries[key][0], self._entries[key][1]),
        )

    def pass_of(self, key: str) -> float:
        return self._entries[key][0]

    def snapshot(self) -> list[tuple[str, float, float]]:
        """``(key, pass, weight)`` per scheduled campaign, in admission
        order — the service's retry-hint estimator reads virtual time
        from here without reaching into the entry lists."""
        return [
            (key, entry[0], entry[2])
            for key, entry in sorted(
                self._entries.items(), key=lambda item: item[1][1]
            )
        ]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
