"""Campaign identity, lifecycle state, and the client-facing handle.

A campaign inside the service is addressed by ``tenant/name``.  Its
identity is journaled as a ``{"kind": "tenant"}`` record (format
version 6) right after the journal header, so a journal found on disk
after a whole-service restart still knows which tenant owns it, at what
priority, and with what scheduling weight — :meth:`CampaignService.attach`
re-admits it under the same identity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable

import numpy as np

from ..datasets.schema import CrowdLabelingDataset
from ..simulation.oracle import SimulatedExpertPanel
from ..simulation.resilient import ResilientRunResult
from ..simulation.session import SessionConfig


class CampaignStatus(Enum):
    """Where a campaign sits in the service lifecycle.

    ``PENDING → ACTIVE → COMPLETED`` is the happy path.  ``DETACHED``
    campaigns hold their deposit but no runtime (client disconnected,
    or a fault strike tore the runtime down for a journal rebuild);
    ``SHED`` campaigns were evicted from the admission queue by
    higher-priority work before ever running; ``QUARANTINED`` campaigns
    exhausted their fault strikes and are parked — deposit intact —
    until an operator re-attaches them.
    """

    PENDING = "pending"
    ACTIVE = "active"
    DETACHED = "detached"
    COMPLETED = "completed"
    SHED = "shed"
    QUARANTINED = "quarantined"


@dataclass
class CampaignSpec:
    """Everything the service needs to run (or re-run) one campaign.

    Parameters
    ----------
    tenant, name:
        The campaign's identity; ``tenant/name`` must be unique among
        live campaigns.
    dataset, config:
        As in :func:`~repro.engine.runner.run_parallel_hc_session`.
        ``config.journal_path`` may be left unset — the service derives
        ``journal_root/tenant/name.jsonl``.
    jobs, inline:
        Shard layout for the campaign's pool.
    priority:
        Admission priority; larger values are more important.  Under
        saturation, strictly lower-priority *pending* campaigns are
        shed to make room.
    weight:
        Scheduling weight (service rate is proportional to it);
        ``None`` inherits the tenant quota's weight.
    chaos, policy:
        Per-campaign fault injection and supervision overrides — chaos
        plans are deliberately per-campaign so one tenant's injected
        faults cannot leak into another tenant's transports.
    source_factory:
        ``spec -> answer source`` building the *raw* (pre-fault-wrap)
        source; used at launch and again at every re-attach, after
        which the journaled source state rewinds it.  Defaults to the
        simulator panel every solo entry point builds.
    stream:
        Optional :class:`~repro.stream.runtime.StreamSpec`.  When set,
        the campaign runs as a :class:`~repro.stream.runtime
        .StreamingCampaign` fed by an event log generated from the
        dataset: each service step consumes ``events_per_step``
        delivery slots instead of one checking round.  Streamed
        campaigns are inline-only (the streaming runtime owns its
        session directly; there is no shard pool to spread).
    """

    tenant: str
    name: str
    dataset: CrowdLabelingDataset
    config: SessionConfig
    jobs: int = 1
    priority: int = 0
    weight: float | None = None
    inline: bool = True
    chaos: object | None = None
    policy: object | None = None
    source_factory: Callable[["CampaignSpec"], object] | None = None
    stream: object | None = None

    def __post_init__(self) -> None:
        if not self.tenant or "/" in self.tenant:
            raise ValueError("tenant must be non-empty and '/'-free")
        if not self.name or "/" in self.name:
            raise ValueError("campaign name must be non-empty and '/'-free")
        if self.stream is not None and not self.inline:
            raise ValueError(
                "streamed campaigns are inline-only: the streaming "
                "runtime drives its own session, not a shard pool"
            )

    @property
    def campaign_id(self) -> str:
        return f"{self.tenant}/{self.name}"

    def build_source(self):
        """The raw answer source (the runtime adds fault wrapping)."""
        if self.source_factory is not None:
            return self.source_factory(self)
        return SimulatedExpertPanel(
            self.dataset.ground_truth,
            rng=np.random.default_rng(self.config.seed),
        )


def tenant_record(spec: CampaignSpec, weight: float) -> dict:
    """The ``{"kind": "tenant"}`` journal record for ``spec``."""
    return {
        "kind": "tenant",
        "tenant": spec.tenant,
        "name": spec.name,
        "priority": int(spec.priority),
        "weight": float(weight),
    }


@dataclass
class CampaignRecord:
    """The service's internal per-campaign state (not client-facing)."""

    spec: CampaignSpec
    config: SessionConfig  # spec.config with journal_path resolved
    journal_path: Path
    weight: float
    status: CampaignStatus = CampaignStatus.PENDING
    #: Spending already on the journal when this service admitted the
    #: campaign (non-zero only for attach-after-restart); the shared
    #: ledger deposit covers ``config.budget - base_spent``.
    base_spent: float = 0.0
    #: Whether the journal already has a launched session to resume
    #: (False exactly until the first successful activation).
    launched: bool = False
    strikes: int = 0
    rounds: int = 0
    spent: float = 0.0
    latencies: list = field(default_factory=list)
    runtime: dict | None = None
    result: ResilientRunResult | None = None
    error: str | None = None
    leaked_reservations: int = 0

    @property
    def campaign_id(self) -> str:
        return self.spec.campaign_id

    def identity_record(self) -> dict:
        return tenant_record(self.spec, self.weight)


def resolve_config(
    spec: CampaignSpec, journal_root: Path | None
) -> tuple[SessionConfig, Path]:
    """Resolve the campaign's journal path, without touching disk.

    Service campaigns always journal — detach/reattach and fault
    recovery rebuild from the journal, so a journal-less campaign would
    be unrecoverable the moment anything goes wrong.
    """
    config = spec.config
    if config.journal_path is not None:
        return config, Path(config.journal_path)
    if journal_root is None:
        raise ValueError(
            "service campaigns must journal: set config.journal_path or "
            "give the service a journal_root"
        )
    journal_path = Path(journal_root) / spec.tenant / f"{spec.name}.jsonl"
    return dataclasses.replace(config, journal_path=journal_path), journal_path


class CampaignHandle:
    """Read-only client view of one campaign inside the service.

    Handles stay valid across detach/reattach and service restarts are
    re-keyed by ``campaign_id``; all fields reflect the record live.
    """

    def __init__(self, record: CampaignRecord):
        self._record = record

    @property
    def campaign_id(self) -> str:
        return self._record.campaign_id

    @property
    def tenant(self) -> str:
        return self._record.spec.tenant

    @property
    def name(self) -> str:
        return self._record.spec.name

    @property
    def status(self) -> CampaignStatus:
        return self._record.status

    @property
    def journal_path(self) -> Path:
        return self._record.journal_path

    @property
    def rounds(self) -> int:
        return self._record.rounds

    @property
    def strikes(self) -> int:
        return self._record.strikes

    @property
    def spent(self) -> float:
        return self._record.spent

    @property
    def result(self) -> ResilientRunResult | None:
        return self._record.result

    @property
    def error(self) -> str | None:
        return self._record.error

    def __repr__(self) -> str:
        return (
            f"CampaignHandle({self.campaign_id!r}, "
            f"status={self.status.value}, rounds={self.rounds})"
        )
