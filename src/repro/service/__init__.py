"""The multi-tenant campaign service.

One long-lived :class:`CampaignService` hosts many tenants' campaigns
over a shared budget pool: deposit-based admission control with
per-tenant quotas (:mod:`~repro.service.admission`), weighted-fair
round scheduling (:mod:`~repro.service.scheduler`), bounded-queue
backpressure with priority shedding, and crash-safe detach/reattach
through the campaign journals.  Each campaign remains bit-identical to
its solo :func:`~repro.engine.runner.run_parallel_hc_session` run —
interleaving, other tenants' faults, detaches and whole-service
restarts included.
"""

from .admission import AdmissionController, TenantQuota
from .campaign import (
    CampaignHandle,
    CampaignSpec,
    CampaignStatus,
    tenant_record,
)
from .errors import (
    CampaignQuarantinedError,
    CampaignStateError,
    QuotaExceededError,
    ServiceError,
    ServiceSaturatedError,
    UnknownCampaignError,
)
from .recovery import RecoveredCampaign, RecoveryReport
from .scheduler import WeightedFairScheduler
from .service import CampaignService, ServicePolicy

__all__ = [
    "AdmissionController",
    "CampaignHandle",
    "CampaignQuarantinedError",
    "CampaignService",
    "CampaignSpec",
    "CampaignStateError",
    "CampaignStatus",
    "QuotaExceededError",
    "RecoveredCampaign",
    "RecoveryReport",
    "ServiceError",
    "ServicePolicy",
    "ServiceSaturatedError",
    "TenantQuota",
    "UnknownCampaignError",
    "WeightedFairScheduler",
    "tenant_record",
]
