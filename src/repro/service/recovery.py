"""Whole-service crash recovery from a directory of journals.

After a host crash nothing survives but the journal directory.
:meth:`~repro.service.service.CampaignService.recover` (implemented
here as :func:`recover_service`) turns that directory back into a
running multi-tenant service in one deterministic sweep:

1. **Scan** — every ``*.jsonl`` under the root, in sorted order, so
   two recoveries of the same directory make identical decisions.
2. **Salvage** — :func:`~repro.storage.integrity.recover_journal` on
   each journal: torn tails are trimmed, interior corruption (v8
   framing) is cut back to the longest verified prefix with the
   original bytes preserved in a ``.damaged`` sidecar.
3. **Triage** — a salvaged journal whose prefix still holds a
   checkpoint (or a streamed bootstrap's ``stream_checkpoint``) is
   *recoverable*; one damaged all the way into its bootstrap region is
   not — its remains are moved wholesale into the sidecar and the
   campaign starts over.
4. **Re-admit** — recoverable campaigns are re-attached (spending
   already on the journal is committed against the pool, only the
   remainder re-deposited — the same exact-:class:`fractions.Fraction`
   settlement as a voluntary reattach); reset campaigns are
   resubmitted fresh.  Campaigns with no spec on offer are reported as
   ``orphaned`` and left untouched for a later ``attach``.
5. **Audit** — the shared ledger's books are strict-audited
   (:meth:`~repro.engine.ledger.BudgetLedger.audit` with
   ``strict=True``); recovery refuses to hand back a service whose
   accounting already drifted.

The whole sweep is read-your-own-writes deterministic: same directory
bytes + same specs → same :class:`RecoveryReport`, same admission
order, same deposits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from ..core.serialization import SerializationError, _fsync_directory
from ..obs import OBS
from ..storage.integrity import (
    DAMAGED_SIDECAR_SUFFIX,
    JournalDamageReport,
    recover_journal,
)
from .campaign import CampaignSpec, resolve_config
from .errors import ServiceError

__all__ = ["RecoveredCampaign", "RecoveryReport", "recover_service"]

#: Outcomes a scanned journal can land on, in decision order.
RECOVERY_OUTCOMES = ("reattached", "reset", "orphaned", "failed")


@dataclass(frozen=True)
class RecoveredCampaign:
    """One journal's fate in a recovery sweep."""

    campaign_id: str
    path: Path
    outcome: str  # one of RECOVERY_OUTCOMES
    base_spent: float = 0.0
    salvaged_bytes: int = 0
    sidecar: Path | None = None
    damage: tuple[str, ...] = ()
    error: str = ""

    def as_dict(self) -> dict:
        return {
            "campaign_id": self.campaign_id,
            "path": str(self.path),
            "outcome": self.outcome,
            "base_spent": self.base_spent,
            "salvaged_bytes": self.salvaged_bytes,
            "sidecar": str(self.sidecar) if self.sidecar else None,
            "damage": list(self.damage),
            "error": self.error,
        }


@dataclass
class RecoveryReport:
    """The verdict of one whole-service recovery sweep."""

    root: Path
    campaigns: list[RecoveredCampaign] = field(default_factory=list)
    ledger_books: list[dict] = field(default_factory=list)

    @property
    def scanned(self) -> int:
        return len(self.campaigns)

    def outcome(self, outcome: str) -> list[RecoveredCampaign]:
        return [c for c in self.campaigns if c.outcome == outcome]

    @property
    def reattached(self) -> list[RecoveredCampaign]:
        return self.outcome("reattached")

    @property
    def reset(self) -> list[RecoveredCampaign]:
        return self.outcome("reset")

    @property
    def orphaned(self) -> list[RecoveredCampaign]:
        return self.outcome("orphaned")

    @property
    def failed(self) -> list[RecoveredCampaign]:
        return self.outcome("failed")

    @property
    def clean(self) -> bool:
        """Every journal back in service, nothing orphaned or failed."""
        return all(
            c.outcome in ("reattached", "reset") for c in self.campaigns
        )

    @property
    def salvaged_bytes(self) -> int:
        return sum(c.salvaged_bytes for c in self.campaigns)

    def as_dict(self) -> dict:
        return {
            "root": str(self.root),
            "scanned": self.scanned,
            "clean": self.clean,
            "salvaged_bytes": self.salvaged_bytes,
            "outcomes": {
                outcome: len(self.outcome(outcome))
                for outcome in RECOVERY_OUTCOMES
            },
            "campaigns": [c.as_dict() for c in self.campaigns],
            "ledger_books": self.ledger_books,
        }


def _identity(
    report: JournalDamageReport, path: Path, root: Path
) -> tuple[str, str]:
    """``(tenant, name)`` of a journal: the journaled tenant record
    when the verified prefix still has one, else the service's
    ``root/tenant/name.jsonl`` layout convention."""
    for record in reversed(report.records):
        if record.get("kind") == "tenant":
            tenant = record.get("tenant")
            name = record.get("name")
            if tenant is not None and name is not None:
                return str(tenant), str(name)
    try:
        relative = path.relative_to(root)
    except ValueError:
        relative = Path(path.name)
    if len(relative.parts) >= 2:
        return relative.parts[-2], path.stem
    return "", path.stem


def _recoverable(report: JournalDamageReport) -> bool:
    """A salvaged prefix supports reattach iff it still proves some
    durable progress point (the same rule ``attach`` enforces)."""
    return any(
        record.get("kind") in ("checkpoint", "stream_checkpoint")
        for record in report.records
    )


def _retire_journal(path: Path, report: JournalDamageReport) -> Path:
    """Move an unrecoverable journal's remains into its sidecar.

    :func:`recover_journal` already preserved the pre-salvage bytes
    when the damage went beyond a torn tail; a journal that is
    *unusable* for subtler reasons (e.g. its bootstrap region never
    made it to disk) gets one written here, so no bytes are ever lost
    to a reset.  The journal itself is removed — the reset campaign
    restarts from a fresh file.
    """
    sidecar = report.sidecar
    if sidecar is None:
        sidecar = path.with_name(path.name + DAMAGED_SIDECAR_SUFFIX)
        sidecar.write_bytes(path.read_bytes())
    path.unlink()
    _fsync_directory(path.parent)
    return sidecar


def recover_service(
    service,
    journal_root: "str | Path | None" = None,
    *,
    specs: "Iterable[CampaignSpec] | Mapping[str, CampaignSpec] | None" = None,
    spec_factory: "Callable[[str, str], CampaignSpec | None] | None" = None,
    strict: bool = True,
) -> RecoveryReport:
    """Body of :meth:`CampaignService.recover`; see the module docstring.

    ``specs`` maps ``campaign_id`` (``tenant/name``) to the spec used
    to re-admit that campaign; ``spec_factory(tenant, name)`` is
    consulted for anything not covered and may return ``None`` to
    leave the journal orphaned.  With ``strict=True`` (default) a
    post-sweep :class:`~repro.engine.ledger.LedgerDriftError` or a
    failed/unsalvageable campaign is *reported*, not raised — strict
    gates only the ledger audit.
    """
    root = Path(journal_root) if journal_root is not None else None
    if root is None:
        root = service._journal_root
    if root is None:
        raise ValueError(
            "recover() needs a journal directory: pass journal_root or "
            "construct the service with one"
        )
    spec_map: dict[str, CampaignSpec] = {}
    if specs is not None:
        if isinstance(specs, Mapping):
            spec_map.update(specs)
        else:
            spec_map.update({spec.campaign_id: spec for spec in specs})
    report = RecoveryReport(root=root)
    paths = sorted(root.rglob("*.jsonl"), key=lambda p: str(p)) if (
        root.exists()
    ) else []
    for path in paths:
        report.campaigns.append(
            _recover_one(service, path, root, spec_map, spec_factory)
        )
    if strict:
        report.ledger_books = service.ledger.audit(strict=True)
    else:
        report.ledger_books = service.ledger.audit()
    _publish(report)
    return report


def _recover_one(
    service,
    path: Path,
    root: Path,
    spec_map: dict[str, CampaignSpec],
    spec_factory,
) -> RecoveredCampaign:
    try:
        damage_report = recover_journal(path)
    except OSError as error:
        return RecoveredCampaign(
            campaign_id=f"?/{path.stem}",
            path=path,
            outcome="failed",
            error=f"unreadable journal: {error}",
        )
    tenant, name = _identity(damage_report, path, root)
    campaign_id = f"{tenant}/{name}"
    damage_kinds = tuple(entry.kind for entry in damage_report.damage)
    spec = spec_map.get(campaign_id)
    if spec is None and spec_factory is not None:
        spec = spec_factory(tenant, name)
    if not _recoverable(damage_report):
        # Damaged into the bootstrap region: nothing on the journal
        # proves any progress, so the campaign starts over.
        sidecar = _retire_journal(path, damage_report)
        if spec is None:
            return RecoveredCampaign(
                campaign_id=campaign_id,
                path=path,
                outcome="orphaned",
                salvaged_bytes=damage_report.salvaged_bytes,
                sidecar=sidecar,
                damage=damage_kinds,
                error="no spec to resubmit the reset campaign",
            )
        try:
            service.submit(spec)
        except (ServiceError, SerializationError, ValueError) as error:
            return RecoveredCampaign(
                campaign_id=campaign_id,
                path=path,
                outcome="failed",
                sidecar=sidecar,
                damage=damage_kinds,
                error=str(error),
            )
        return RecoveredCampaign(
            campaign_id=campaign_id,
            path=path,
            outcome="reset",
            salvaged_bytes=damage_report.salvaged_bytes,
            sidecar=sidecar,
            damage=damage_kinds,
        )
    if spec is None:
        return RecoveredCampaign(
            campaign_id=campaign_id,
            path=path,
            outcome="orphaned",
            salvaged_bytes=damage_report.salvaged_bytes,
            sidecar=damage_report.sidecar,
            damage=damage_kinds,
            error="no spec on offer; attach() later to re-admit",
        )
    try:
        _config, resolved_path = resolve_config(spec, service._journal_root)
        if resolved_path != path:
            raise ServiceError(
                f"spec for {campaign_id} resolves to {resolved_path}, "
                f"not the scanned journal {path}"
            )
        handle = service.attach(spec)
    except (ServiceError, SerializationError, ValueError) as error:
        return RecoveredCampaign(
            campaign_id=campaign_id,
            path=path,
            outcome="failed",
            salvaged_bytes=damage_report.salvaged_bytes,
            sidecar=damage_report.sidecar,
            damage=damage_kinds,
            error=str(error),
        )
    record = service._records[handle.campaign_id]
    return RecoveredCampaign(
        campaign_id=campaign_id,
        path=path,
        outcome="reattached",
        base_spent=record.base_spent,
        salvaged_bytes=damage_report.salvaged_bytes,
        sidecar=damage_report.sidecar,
        damage=damage_kinds,
    )


def _publish(report: RecoveryReport) -> None:
    if not OBS.enabled:
        return
    counter = OBS.registry.counter(
        "repro_recovery_campaigns_total",
        "Journals processed by service recovery, by outcome",
        labels=("outcome",),
    )
    for campaign in report.campaigns:
        counter.labels(outcome=campaign.outcome).inc()
    OBS.registry.counter(
        "repro_recovery_sweeps_total",
        "Whole-service recovery sweeps",
    ).labels().inc()
