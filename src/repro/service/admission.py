"""Admission control: tenant quotas, deposits, and load shedding.

The service's shared :class:`~repro.engine.ledger.BudgetLedger` is the
one real resource every tenant contends for.  Admission is therefore
*deposit-based*: a campaign is admitted only if its full remaining
budget can be reserved on the shared pool right now.  An admitted
campaign can always run to completion — the service never discovers
mid-round that tenants oversubscribed the pool — and the deposit is
settled exactly once:

* **completion** commits the campaign's actual spending (refunding the
  unspent remainder to the pool atomically);
* **shedding / service close** releases the deposit in full;
* **detach** and **quarantine** keep the deposit open — the campaign's
  claim on the pool survives client disconnects and fault strikes, so
  re-attach never races other tenants for the money it already owned.

Backpressure is explicit and fail-fast: when the bounded admission
queue or the ledger cannot take a new campaign, strictly lower-priority
*pending* campaigns are shed to make room; if that still does not free
enough, the submission is rejected with
:class:`~repro.service.errors.ServiceSaturatedError` and **no state
changes** — rejection is free, by design.

Streamed campaigns add a second pressure source: their aggregate
backlog (undelivered events plus unsealed facts), fed in through
:meth:`AdmissionController.observe_backlog`, shrinks the *effective*
queue bound so new admissions slow down while the service digests the
stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.ledger import BudgetLedger, LedgerError
from .campaign import CampaignRecord
from .errors import QuotaExceededError, ServiceSaturatedError

#: Float-accumulation tolerance, matching the ledger's own slack.
_SLACK = 1e-9


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits, independent of service load.

    Parameters
    ----------
    max_active:
        Maximum campaigns a tenant may have admitted at once (pending,
        active, detached, or quarantined — anything still holding a
        deposit).  ``None`` is unlimited.
    max_budget:
        Cap on the summed ``config.budget`` of the tenant's admitted
        campaigns.  ``None`` is unlimited.
    weight:
        Default scheduling weight for the tenant's campaigns (a spec's
        explicit ``weight`` wins).
    """

    max_active: int | None = None
    max_budget: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_active is not None and self.max_active < 1:
            raise ValueError("max_active must be at least 1")
        if self.max_budget is not None and self.max_budget < 0:
            raise ValueError("max_budget must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


class AdmissionController:
    """Deposit bookkeeping over the shared ledger.

    The service calls :meth:`admit` on submit/attach, :meth:`settle`
    on completion, and :meth:`forfeit` when a deposit must be returned
    (shed, or close of a never-finished campaign).  All counters are
    monotone and exposed via :attr:`counters` for the stats endpoint
    and the benchmark.
    """

    def __init__(
        self,
        ledger: BudgetLedger,
        *,
        queue_limit: int,
        quotas: dict[str, TenantQuota] | None = None,
        default_quota: TenantQuota | None = None,
        backlog_per_slot: int = 32,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if backlog_per_slot < 1:
            raise ValueError("backlog_per_slot must be at least 1")
        self._ledger = ledger
        self._queue_limit = int(queue_limit)
        self._backlog_per_slot = int(backlog_per_slot)
        self._backlog = 0
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota or TenantQuota()
        # campaign_id -> (ticket, tenant, budget_total, deposit_amount)
        self._deposits: dict[str, tuple[int, str, float, float]] = {}
        self._counters = {
            "admitted": 0,
            "rejected_queue": 0,
            "rejected_ledger": 0,
            "rejected_quota": 0,
            "shed": 0,
        }

    # ------------------------------------------------------------------

    @property
    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    def has_deposit(self, campaign_id: str) -> bool:
        return campaign_id in self._deposits

    def deposit_amount(self, campaign_id: str) -> float:
        """The refundable amount held on the ledger for a campaign."""
        return self._deposits[campaign_id][3]

    def open_deposits(self) -> list[str]:
        return sorted(self._deposits)

    # ------------------------------------------------------------------
    # streaming backpressure

    def observe_backlog(self, depth: int) -> None:
        """Feed the aggregate streaming backlog into admission.

        ``depth`` is the total number of undelivered events plus
        unsealed pending facts across the service's streamed campaigns.
        Every ``backlog_per_slot`` events of backlog withhold one slot
        of the admission queue (never below one), so a service drowning
        in stream events sheds *new* work at the door instead of
        letting the backlog compound.
        """
        if depth < 0:
            raise ValueError("backlog depth must be non-negative")
        self._backlog = int(depth)

    @property
    def backlog(self) -> int:
        return self._backlog

    @property
    def effective_queue_limit(self) -> int:
        """The queue bound after backpressure shrinkage."""
        withheld = self._backlog // self._backlog_per_slot
        return max(1, self._queue_limit - withheld)

    # ------------------------------------------------------------------

    def admit(
        self,
        record: CampaignRecord,
        pending: list[CampaignRecord],
    ) -> list[CampaignRecord]:
        """Admit ``record``, shedding lower-priority pending work if
        needed; returns the shed records (the service marks them).

        Checks run in order quota → queue → ledger, and every check is
        evaluated *before* any state changes: a rejection (raised
        :class:`QuotaExceededError` / :class:`ServiceSaturatedError`)
        leaves the queue, the ledger, and every other campaign exactly
        as they were.
        """
        quota = self.quota_for(record.spec.tenant)
        self._check_quota(record, quota)
        deposit = float(record.config.budget) - float(record.base_spent)
        if deposit < 0:
            raise ValueError(
                "campaign has already overspent its configured budget"
            )
        victims = self._plan_shedding(record, pending, deposit)
        for victim in victims:
            self.forfeit(victim.campaign_id)
            self._counters["shed"] += 1
        if record.base_spent > 0:
            # Attach-after-restart: the pre-restart spending is real,
            # already-settled money — it joins the pool's committed
            # side directly, never as a refundable reservation.
            self._ledger.commit_direct(float(record.base_spent))
        try:
            ticket = self._ledger.reserve(
                deposit, label=f"deposit:{record.campaign_id}"
            )
        except LedgerError as error:  # pragma: no cover - planned above
            self._counters["rejected_ledger"] += 1
            raise ServiceSaturatedError(str(error), reason="ledger")
        self._deposits[record.campaign_id] = (
            ticket,
            record.spec.tenant,
            float(record.config.budget),
            deposit,
        )
        self._counters["admitted"] += 1
        return victims

    def settle(self, campaign_id: str, spent_delta: float) -> None:
        """Commit a completed campaign's deposit at its actual cost."""
        ticket = self._deposits.pop(campaign_id)[0]
        self._ledger.commit(ticket, max(0.0, float(spent_delta)))

    def forfeit(self, campaign_id: str) -> None:
        """Release a deposit in full (shed, or close-unfinished)."""
        ticket = self._deposits.pop(campaign_id)[0]
        self._ledger.release(ticket)

    # ------------------------------------------------------------------

    def _check_quota(
        self, record: CampaignRecord, quota: TenantQuota
    ) -> None:
        tenant = record.spec.tenant
        held = [
            entry[2]
            for entry in self._deposits.values()
            if entry[1] == tenant
        ]
        if quota.max_active is not None and len(held) + 1 > quota.max_active:
            self._counters["rejected_quota"] += 1
            raise QuotaExceededError(
                f"tenant {tenant!r} already has {len(held)} admitted "
                f"campaigns (quota {quota.max_active})"
            )
        if (
            quota.max_budget is not None
            and sum(held) + float(record.config.budget)
            > quota.max_budget + _SLACK
        ):
            self._counters["rejected_quota"] += 1
            raise QuotaExceededError(
                f"tenant {tenant!r} holds {sum(held)} of budget quota "
                f"{quota.max_budget}; cannot admit "
                f"{record.config.budget} more"
            )

    def _plan_shedding(
        self,
        record: CampaignRecord,
        pending: list[CampaignRecord],
        deposit: float,
    ) -> list[CampaignRecord]:
        """Pick the pending campaigns to shed for ``record``, if any.

        Only *strictly* lower-priority pending campaigns are sheddable
        (equal priority is first-come-first-served), evicted lowest
        priority first, newest first within a priority — the victims
        that lose the least invested standing.  Raises the appropriate
        saturation error when shedding everything sheddable still does
        not make room.
        """
        sheddable = sorted(
            (
                candidate
                for candidate in pending
                if candidate.spec.priority < record.spec.priority
                and candidate.campaign_id in self._deposits
            ),
            key=lambda candidate: (
                candidate.spec.priority,
                -pending.index(candidate),
            ),
        )
        victims: list[CampaignRecord] = []
        limit = self.effective_queue_limit
        overflow = len(pending) + 1 - limit
        if overflow > 0:
            if len(sheddable) < overflow:
                self._counters["rejected_queue"] += 1
                crowded = (
                    f" (backpressure holds {self._queue_limit - limit} "
                    f"of {self._queue_limit} slots)"
                    if limit < self._queue_limit
                    else ""
                )
                raise ServiceSaturatedError(
                    f"admission queue is full ({len(pending)}/{limit})"
                    f"{crowded} with no lower-priority work to shed",
                    reason="queue",
                )
            victims = sheddable[:overflow]
        demand = float(record.base_spent) + deposit
        freed = sum(
            self._deposits[victim.campaign_id][3] for victim in victims
        )
        index = len(victims)
        while (
            demand > self._ledger.available + freed + _SLACK
            and index < len(sheddable)
        ):
            victim = sheddable[index]
            victims.append(victim)
            freed += self._deposits[victim.campaign_id][3]
            index += 1
        if demand > self._ledger.available + freed + _SLACK:
            self._counters["rejected_ledger"] += 1
            raise ServiceSaturatedError(
                f"shared budget pool cannot cover a {demand} deposit "
                f"(available {self._ledger.available}, sheddable "
                f"{freed})",
                reason="ledger",
            )
        return victims
