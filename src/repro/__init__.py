"""repro — reproduction of "Hierarchical Crowdsourcing for Data Labeling
with Heterogeneous Crowd" (Zhang et al., ICDE 2023).

Public API tour
---------------
* :mod:`repro.core` — the paper's data/crowdsourcing model: facts,
  observations, belief states, answer families, the conditional-entropy
  objective, the greedy/exact/random selectors, and the Algorithm 3
  orchestration loop.
* :mod:`repro.aggregation` — the eight truth-inference baselines
  (MV, DS, ZC, GLAD, CRH, BWA, BCC, EBCC).
* :mod:`repro.datasets` — synthetic sentiment corpus, task grouping,
  belief initialization, benchmark-format I/O.
* :mod:`repro.simulation` — simulated expert panels and the one-call
  :func:`~repro.simulation.run_hc_session` pipeline.
* :mod:`repro.experiments` — runners reproducing every figure and
  table of the paper's evaluation.
"""

import importlib

__version__ = "1.0.0"

# Subpackages resolve lazily (PEP 562): the aggregation baselines pull
# scipy, which costs ~0.8 s per interpreter — paid by every spawned
# shard worker if the package root imports it eagerly.  Workers import
# repro.engine.shards only, so the root must not decide for them.
_SUBPACKAGES = (
    "aggregation",
    "analysis",
    "core",
    "datasets",
    "downstream",
    "experiments",
    "simulation",
)

__all__ = [*_SUBPACKAGES, "__version__"]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SUBPACKAGES))
