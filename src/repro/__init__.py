"""repro — reproduction of "Hierarchical Crowdsourcing for Data Labeling
with Heterogeneous Crowd" (Zhang et al., ICDE 2023).

Public API tour
---------------
* :mod:`repro.core` — the paper's data/crowdsourcing model: facts,
  observations, belief states, answer families, the conditional-entropy
  objective, the greedy/exact/random selectors, and the Algorithm 3
  orchestration loop.
* :mod:`repro.aggregation` — the eight truth-inference baselines
  (MV, DS, ZC, GLAD, CRH, BWA, BCC, EBCC).
* :mod:`repro.datasets` — synthetic sentiment corpus, task grouping,
  belief initialization, benchmark-format I/O.
* :mod:`repro.simulation` — simulated expert panels and the one-call
  :func:`~repro.simulation.run_hc_session` pipeline.
* :mod:`repro.experiments` — runners reproducing every figure and
  table of the paper's evaluation.
"""

from . import (
    aggregation,
    analysis,
    core,
    datasets,
    downstream,
    experiments,
    simulation,
)

__version__ = "1.0.0"

__all__ = [
    "aggregation",
    "analysis",
    "core",
    "datasets",
    "downstream",
    "experiments",
    "simulation",
    "__version__",
]
