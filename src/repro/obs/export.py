"""Rendering the registry: Prometheus text exposition and JSON files.

Both renderers work off :meth:`MetricsRegistry.snapshot`, so the same
deterministic dict backs the scrape endpoint text, the ``--metrics-out``
file, and the ``repro metrics`` pretty-printer — there is exactly one
serialization of a registry, and it sorts everything.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import SNAPSHOT_SCHEMA, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "write_snapshot",
    "load_snapshot",
]


def _label_suffix(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [
        (name, value) for name, value in labels.items()
    ] + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(source: MetricsRegistry | dict) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Accepts a live registry or an already-serialized snapshot dict, so
    a scrape endpoint and an offline renderer share this code path.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    lines: list[str] = []
    for name in sorted(snapshot.get("metrics", {})):
        family = snapshot["metrics"][name]
        kind = family["type"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind == "histogram":
                for bound, cumulative in series["buckets"]:
                    suffix = _label_suffix(
                        labels, (("le", _format_bound(bound)),)
                    )
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                inf_suffix = _label_suffix(labels, (("le", "+Inf"),))
                lines.append(
                    f"{name}_bucket{inf_suffix} {series['count']}"
                )
                plain = _label_suffix(labels)
                lines.append(f"{name}_sum{plain} {series['sum']!r}")
                lines.append(f"{name}_count{plain} {series['count']}")
            else:
                suffix = _label_suffix(labels)
                lines.append(
                    f"{name}{suffix} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _format_bound(bound: float) -> str:
    return repr(float(bound))


def render_json(source: MetricsRegistry | dict) -> str:
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    return json.dumps(snapshot, indent=2, sort_keys=True)


def write_snapshot(source: MetricsRegistry | dict, path) -> Path:
    """Write the JSON snapshot; ``.prom`` extension switches to the
    Prometheus text format (handy for node-exporter textfile dirs)."""
    path = Path(path)
    if path.suffix == ".prom":
        path.write_text(render_prometheus(source))
    else:
        path.write_text(render_json(source) + "\n")
    return path


def load_snapshot(path) -> dict:
    """Read back a ``--metrics-out`` JSON file, checking the schema."""
    snapshot = json.loads(Path(path).read_text())
    schema = snapshot.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"metrics snapshot schema {schema!r} is not supported "
            f"(expected {SNAPSHOT_SCHEMA})"
        )
    return snapshot
