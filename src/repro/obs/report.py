"""Per-round latency attribution: where did the wall-clock go.

The engine stamps every instrumented phase into one histogram family,
``repro_phase_seconds{phase, tenant}`` (see
:meth:`repro.obs.Observability.phase`).  This module folds that family
into the question operators actually ask — *which phase dominates, and
at what tail* — as a per-phase breakdown (count, total seconds, share,
p50/p95/p99) overall and per tenant.  It runs equally off a live
registry or a ``--metrics-out`` JSON file, which is what the
``repro metrics`` subcommand renders.
"""

from __future__ import annotations

from .registry import MetricsRegistry, quantile_from_buckets

__all__ = ["PHASE_ORDER", "latency_report", "format_report"]

#: Canonical phase ordering for display: the round's data path first,
#: then the service-level phases.  Unknown phases sort after, by name.
PHASE_ORDER = (
    "select",
    "collect",
    "update",
    "commit",
    "journal",
    "admit",
    "seal",
    "round",
    "scheduler-wait",
)

PHASE_FAMILY = "repro_phase_seconds"


def _phase_sort_key(phase: str) -> tuple[int, str]:
    try:
        return (PHASE_ORDER.index(phase), phase)
    except ValueError:
        return (len(PHASE_ORDER), phase)


def _series_stats(series: dict) -> dict:
    count = series["count"]
    buckets = series["buckets"]
    return {
        "count": count,
        "total_seconds": series["sum"],
        "p50": quantile_from_buckets(buckets, count, 0.50),
        "p95": quantile_from_buckets(buckets, count, 0.95),
        "p99": quantile_from_buckets(buckets, count, 0.99),
    }


def _merge(into: dict, series: dict) -> dict:
    """Accumulate a snapshot histogram series into ``into`` (same
    fixed bounds everywhere, so buckets add elementwise)."""
    if not into:
        return {
            "count": series["count"],
            "sum": series["sum"],
            "buckets": [list(bucket) for bucket in series["buckets"]],
        }
    into["count"] += series["count"]
    into["sum"] += series["sum"]
    for merged, bucket in zip(into["buckets"], series["buckets"]):
        merged[1] += bucket[1]
    return into


def latency_report(source: MetricsRegistry | dict) -> dict:
    """Fold the phase histograms into a latency-attribution dict.

    Returns ``{"phases": [...], "tenants": {...}, "attributed_seconds"}``
    where each phase entry carries count / total seconds / share /
    p50 / p95 / p99.  The ``round`` and ``scheduler-wait`` phases are
    *excluded* from the share denominator — ``round`` envelopes the
    data-path phases and ``scheduler-wait`` is idle time, so counting
    either would double-book the attribution.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    family = snapshot.get("metrics", {}).get(PHASE_FAMILY)
    if family is None:
        return {"phases": [], "tenants": {}, "attributed_seconds": 0.0}

    by_phase: dict[str, dict] = {}
    by_tenant: dict[str, dict[str, dict]] = {}
    for series in family["series"]:
        phase = series["labels"].get("phase", "")
        tenant = series["labels"].get("tenant", "")
        by_phase[phase] = _merge(by_phase.get(phase, {}), series)
        if tenant:
            tenant_phases = by_tenant.setdefault(tenant, {})
            tenant_phases[phase] = _merge(
                tenant_phases.get(phase, {}), series
            )

    envelope_phases = {"round", "scheduler-wait"}
    attributed = sum(
        merged["sum"]
        for phase, merged in by_phase.items()
        if phase not in envelope_phases
    )

    def rows(phase_map: dict[str, dict]) -> list[dict]:
        out = []
        for phase in sorted(phase_map, key=_phase_sort_key):
            stats = _series_stats(phase_map[phase])
            stats["phase"] = phase
            stats["share"] = (
                stats["total_seconds"] / attributed
                if attributed > 0 and phase not in envelope_phases
                else 0.0
            )
            out.append(stats)
        return out

    return {
        "phases": rows(by_phase),
        "tenants": {
            tenant: rows(phases)
            for tenant, phases in sorted(by_tenant.items())
        },
        "attributed_seconds": attributed,
    }


def _format_rows(rows: list[dict], indent: str = "") -> list[str]:
    lines = [
        f"{indent}{'phase':<16} {'count':>7} {'total':>9} {'share':>6} "
        f"{'p50':>9} {'p95':>9} {'p99':>9}"
    ]
    for row in rows:
        share = f"{row['share'] * 100:5.1f}%" if row["share"] else "     -"
        lines.append(
            f"{indent}{row['phase']:<16} {row['count']:>7} "
            f"{row['total_seconds']:>8.3f}s {share} "
            f"{row['p50'] * 1000:>7.2f}ms {row['p95'] * 1000:>7.2f}ms "
            f"{row['p99'] * 1000:>7.2f}ms"
        )
    return lines


def format_report(report: dict, per_tenant: bool = True) -> str:
    """Human-readable latency-attribution table."""
    if not report["phases"]:
        return (
            "no phase latencies recorded (was the run started with "
            "--metrics-out / observability enabled?)"
        )
    lines = [
        "latency attribution "
        f"({report['attributed_seconds']:.3f}s attributed)"
    ]
    lines.extend(_format_rows(report["phases"]))
    if per_tenant and report["tenants"]:
        for tenant, rows in report["tenants"].items():
            lines.append(f"tenant {tenant}:")
            lines.extend(_format_rows(rows, indent="  "))
    return "\n".join(lines)
