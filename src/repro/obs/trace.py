"""Deterministic-overhead tracing: nestable spans, bounded buffer.

A span is a ``with``-scoped monotonic duration plus a name and a flat
attribute dict.  Finished spans land in a bounded ring buffer (old
spans fall off; tracing never grows without bound) and, when a path
was given, are appended as one JSON line each — a format every trace
viewer and ``jq`` pipeline can read.

The zero-perturbation contract lives here: the default tracer is
:class:`NullTracer`, whose ``span()`` hands back one shared, reusable
no-op context manager — the hot-path cost of disabled tracing is a
single attribute check (``tracer.enabled``) plus one method call, and
nothing touches RNG streams, journal bytes, or the event loop either
way.  Timing uses ``time.perf_counter`` exclusively; wall-clock never
enters the engine.
"""

from __future__ import annotations

import json
import time
from collections import deque

__all__ = ["Tracer", "NullTracer", "SpanRecord"]


class SpanRecord(dict):
    """A finished span: ``name``, ``depth``, ``start``, ``duration``
    (seconds, monotonic origin) plus the call site's attributes."""

    __slots__ = ()


class _NullSpan:
    """Shared no-op context manager — allocated once per process."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: disabled, allocation-free, shareable."""

    enabled = False

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def spans(self) -> list:
        return []

    def close(self) -> None:
        pass


class _Span:
    """Live span bound to its tracer; records itself on exit."""

    __slots__ = ("_tracer", "name", "attrs", "_started")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self._tracer._depth += 1
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        duration = time.perf_counter() - self._started
        tracer = self._tracer
        tracer._depth -= 1
        tracer._record(
            self.name, self.attrs, self._started, duration, tracer._depth
        )
        return False


class Tracer:
    """Enabled tracer: ring buffer of spans, optional JSONL emission.

    Parameters
    ----------
    capacity:
        Ring-buffer bound; the ``capacity`` most recent spans are kept.
    jsonl_path:
        When given, every finished span is appended as one JSON line
        (sorted keys, so files diff cleanly).  The file is line-buffered
        via explicit flush on :meth:`close` — a crash loses at most the
        OS buffer, never corrupts earlier lines.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, jsonl_path=None) -> None:
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self._buffer: deque = deque(maxlen=capacity)
        self._depth = 0
        self._sequence = 0
        self._file = None
        if jsonl_path is not None:
            self._file = open(jsonl_path, "a", encoding="utf-8")

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def _record(
        self,
        name: str,
        attrs: dict,
        started: float,
        duration: float,
        depth: int,
    ) -> None:
        record = SpanRecord(
            name=name,
            depth=depth,
            seq=self._sequence,
            start=started,
            duration=duration,
        )
        self._sequence += 1
        if attrs:
            record.update(attrs)
        self._buffer.append(record)
        if self._file is not None:
            self._file.write(
                json.dumps(record, sort_keys=True, default=str) + "\n"
            )

    def spans(self) -> list[SpanRecord]:
        return list(self._buffer)

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None
