"""Unified observability: deterministic tracing, metrics, attribution.

One process-wide :class:`Observability` facade (``OBS``) owns a
:class:`~repro.obs.registry.MetricsRegistry` and a tracer.  Engine,
service and stream code instrument their hot seams through two
patterns, both free when observability is off:

``with OBS.phase("select"):``
    Times a block into the ``repro_phase_seconds{phase, tenant}``
    histogram *and* the trace buffer.  Disabled, ``phase()`` returns a
    shared no-op context manager — one attribute check, no allocation.

``if OBS.enabled: ...``
    Guards anything beyond a timer (publishing stats deltas, setting
    gauges) so the disabled path stays out of the profile entirely.

The hard contract, enforced by ``tests/obs/test_zero_perturbation.py``:
enabling any of this never touches an RNG stream and never changes a
journal byte.  Everything here observes; nothing decides.  Shard
worker processes never see this module's global state — they aggregate
local counters inside :class:`~repro.engine.shards.ShardState` and
piggyback deltas on existing ``commit`` replies, which the coordinator
folds into the registry (no added pipe round-trips).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from .export import (
    load_snapshot,
    render_json,
    render_prometheus,
    write_snapshot,
)
from .registry import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .report import format_report, latency_report
from .trace import NullTracer, Tracer

__all__ = [
    "OBS",
    "Observability",
    "get_observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "DEFAULT_BOUNDS",
    "render_prometheus",
    "render_json",
    "write_snapshot",
    "load_snapshot",
    "latency_report",
    "format_report",
]


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_PHASE = _NullPhase()


class _Phase:
    """A timed block: one histogram observation plus one trace span."""

    __slots__ = ("_obs", "_name", "_attrs", "_started")

    def __init__(self, obs: "Observability", name: str, attrs: dict):
        self._obs = obs
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        tracer = self._obs.tracer
        if tracer.enabled:
            tracer._depth += 1
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        duration = time.perf_counter() - self._started
        obs = self._obs
        tracer = obs.tracer
        if tracer.enabled:
            tracer._depth -= 1
            attrs = dict(self._attrs)
            if obs.tenant:
                attrs.setdefault("tenant", obs.tenant)
            tracer._record(
                self._name, attrs, self._started, duration, tracer._depth
            )
        obs.observe_phase(self._name, duration)
        return False


class Observability:
    """Facade over one registry + one tracer; disabled by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer: Tracer | NullTracer = NullTracer()
        self.tenant = ""
        self._phase_family = None
        self._phase_children: dict = {}

    # -- lifecycle -----------------------------------------------------

    def enable(
        self, trace_path=None, trace_capacity: int = 4096
    ) -> "Observability":
        """Turn instrumentation on (idempotent; registry persists)."""
        self.enabled = True
        if isinstance(self.tracer, NullTracer):
            self.tracer = Tracer(
                capacity=trace_capacity, jsonl_path=trace_path
            )
        return self

    def disable(self) -> None:
        self.tracer.close()
        self.tracer = NullTracer()
        self.enabled = False

    def reset(self) -> None:
        """Fresh registry + disabled tracer (test isolation)."""
        self.disable()
        self.registry = MetricsRegistry()
        self.tenant = ""
        self._phase_family = None
        self._phase_children.clear()

    # -- the two instrumentation primitives ----------------------------

    def phase(self, name: str, **attrs):
        """Time a block into ``repro_phase_seconds`` and the trace."""
        if not self.enabled:
            return _NULL_PHASE
        return _Phase(self, name, attrs)

    def observe_phase(self, name: str, duration: float) -> None:
        """Record an already-measured duration for ``name``."""
        # Per-(phase, tenant) child cache: label resolution would
        # otherwise dominate the cost of timing sub-millisecond phases.
        child = self._phase_children.get((name, self.tenant))
        if child is None:
            family = self._phase_family
            if family is None:
                family = self.registry.histogram(
                    "repro_phase_seconds",
                    "Wall-clock seconds per instrumented phase",
                    labels=("phase", "tenant"),
                )
                self._phase_family = family
            child = family.labels(phase=name, tenant=self.tenant)
            self._phase_children[(name, self.tenant)] = child
        child.observe(duration)

    @contextmanager
    def tenant_scope(self, tenant: str):
        """Label phases recorded inside the block with ``tenant``."""
        previous = self.tenant
        self.tenant = tenant
        try:
            yield self
        finally:
            self.tenant = previous

    # -- bulk publication of existing stats objects --------------------

    def publish_deltas(self, prefix: str, stats, **labels) -> None:
        """Fold an ``as_dict()``-style stats object into counters.

        Only the *growth* since the last publication is added (the last
        published snapshot rides on the stats object itself), so the
        same object can be published after every round without double
        counting.  Non-numeric values are skipped.
        """
        if not self.enabled:
            return
        current = {
            key: value
            for key, value in stats.as_dict().items()
            if isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        last = getattr(stats, "_obs_published", None) or {}
        label_names = tuple(sorted(labels))
        for key in sorted(current):
            delta = current[key] - last.get(key, 0)
            if delta > 0:
                family = self.registry.counter(
                    f"{prefix}_{key}_total", labels=label_names
                )
                family.labels(**labels).inc(delta)
        try:
            stats._obs_published = current
        except AttributeError:
            pass

    def publish_gauges(self, prefix: str, values: dict, **labels) -> None:
        """Set one gauge per numeric key of ``values``."""
        if not self.enabled:
            return
        label_names = tuple(sorted(labels))
        for key in sorted(values):
            value = values[key]
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            family = self.registry.gauge(
                f"{prefix}_{key}", labels=label_names
            )
            family.labels(**labels).set(value)

    def consume_worker_delta(self, shard: str, delta) -> None:
        """Fold a shard worker's piggybacked metric delta in.

        ``delta`` is what :meth:`ShardState.take_metrics_delta` built:
        ``{"commands": {cmd: n}, "busy_seconds": {cmd: s}}``.  Rebuilt
        workers reply ``None`` for subsumed commits — skipped here.
        """
        if not self.enabled or not isinstance(delta, dict):
            return
        commands = self.registry.counter(
            "repro_shard_commands_total",
            "Commands handled inside shard workers",
            labels=("shard", "command"),
        )
        busy = self.registry.counter(
            "repro_shard_busy_seconds_total",
            "Seconds shard workers spent executing commands",
            labels=("shard", "command"),
        )
        for command in sorted(delta.get("commands", {})):
            commands.labels(shard=shard, command=command).inc(
                delta["commands"][command]
            )
        for command in sorted(delta.get("busy_seconds", {})):
            busy.labels(shard=shard, command=command).inc(
                delta["busy_seconds"][command]
            )

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def flush(self, metrics_path=None) -> None:
        """Write the snapshot (if asked) and flush the trace file."""
        if metrics_path is not None:
            write_snapshot(self.registry, metrics_path)
        if isinstance(self.tracer, Tracer):
            self.tracer.close()


#: The process-wide instance every instrumented seam reads.  Shard
#: worker processes get a fresh, disabled one on spawn — by design.
OBS = Observability()


def get_observability() -> Observability:
    return OBS
