"""Typed metric primitives and the process-wide registry.

The observability layer is deliberately *boring*: counters, gauges and
histograms are plain Python objects mutated in place, families are
dicts keyed by label-value tuples, and the registry is a sorted
namespace of families.  There is no background thread, no sampling, no
locking beyond what CPython's attribute stores give for free — the
engine is single-writer per process, and shard workers keep their own
local counters and piggyback deltas on existing replies (see
:mod:`repro.engine.shards`), so nothing here ever crosses a process
boundary on its own.

Determinism is load-bearing.  Histograms use **fixed log-spaced bucket
bounds** computed once at import time, so two runs that observe the
same values render byte-identical bucket layouts; snapshots sort
families by name and series by label values, so exports never depend
on insertion order.  Nothing in this module reads a clock or an RNG —
timing happens at the call sites (spans), values arrive here as plain
floats.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "quantile_from_buckets",
]

#: Log-spaced histogram bounds: four buckets per decade from 10 us to
#: 100 s.  Latencies in this codebase span shard pings (~100 us) to
#: whole streamed campaigns (~10 s); the fixed grid keeps snapshots
#: deterministic and cross-run diffable, at the cost of ~±30% quantile
#: resolution — fine for attribution ("where did the round go"), not
#: meant for micro-benchmarks.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 12) for exponent in range(-20, 9)
)


class Counter:
    """Monotonically increasing count.  ``inc`` only; never reset in
    place (reset happens by replacing the registry)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that goes up and down (queue depths, open reservations)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bound histogram with cumulative-bucket export.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative storage; cumulated at export).  Observations above
    the last bound only land in the implicit ``+Inf`` bucket (tracked
    by ``count``).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError("histogram bounds must be sorted, non-empty")
        self.bounds = tuple(float(bound) for bound in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect_left(self.bounds, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` per bound — the Prometheus shape."""
        out = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket layout."""
        return quantile_from_buckets(
            self.cumulative_buckets(), self.count, q
        )

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                [bound, cumulative]
                for bound, cumulative in self.cumulative_buckets()
            ],
        }


def quantile_from_buckets(
    buckets: list[tuple[float, int]] | list[list],
    count: int,
    q: float,
) -> float:
    """Prometheus-style quantile estimate from cumulative buckets.

    Linear interpolation inside the landing bucket; observations beyond
    the last bound clamp to it.  Works off the serialized snapshot
    shape too, so reports can be rendered from a JSON file long after
    the process exited.
    """
    if count <= 0:
        return 0.0
    rank = q * count
    previous_bound = 0.0
    previous_cumulative = 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - previous_cumulative
            if in_bucket <= 0:
                return float(bound)
            fraction = (rank - previous_cumulative) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound = float(bound)
        previous_cumulative = cumulative
    return float(buckets[-1][0]) if buckets else 0.0


_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricFamily:
    """All series of one metric name, keyed by label-value tuples.

    A family declared without labels still holds one (label-less)
    child; ``inc``/``set``/``observe`` proxy to it so call sites don't
    spell ``family.labels()`` for the common case.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        factory,
    ) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self._factory = factory
        self._children: dict[tuple[str, ...], object] = {}

    @property
    def type_name(self) -> str:
        return _TYPE_NAMES[self._factory_class()]

    def _factory_class(self):
        probe = self._factory
        return probe if isinstance(probe, type) else type(probe())

    def labels(self, **labels: str):
        """The child metric for exactly the declared labels."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    # -- label-less convenience ----------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    # -- export --------------------------------------------------------

    def series(self) -> list[tuple[dict, object]]:
        """``(labels_dict, metric)`` pairs sorted by label values."""
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in sorted(self._children.items())
        ]

    def as_dict(self) -> dict:
        return {
            "type": self.type_name,
            "help": self.help,
            "labels": list(self.label_names),
            "series": [
                {"labels": labels, **child.as_dict()}
                for labels, child in self.series()
            ],
        }


#: Version stamp written into every snapshot — bump when the snapshot
#: shape changes so ``repro metrics`` can refuse files it can't read.
SNAPSHOT_SCHEMA = 1


class MetricsRegistry:
    """A sorted namespace of metric families.

    Registration is idempotent: asking for an existing name returns the
    existing family (and raises if the type or label set disagrees), so
    modules can declare their metrics at call time without import-order
    coupling.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self, factory, name: str, help_text: str, labels: tuple[str, ...]
    ) -> MetricFamily:
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing._factory_class() is not self._probe_class(factory)
                or existing.label_names != label_names
            ):
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different type or label set"
                )
            return existing
        family = MetricFamily(name, help_text, label_names, factory)
        self._families[name] = family
        return family

    @staticmethod
    def _probe_class(factory):
        return factory if isinstance(factory, type) else type(factory())

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> MetricFamily:
        return self._family(
            lambda: Histogram(bounds), name, help_text, labels
        )

    def families(self) -> list[MetricFamily]:
        return [
            self._families[name] for name in sorted(self._families)
        ]

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """Deterministic dict of every family (sorted names/series)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": {
                family.name: family.as_dict()
                for family in self.families()
            },
        }

    def reset(self) -> None:
        self._families.clear()
