"""Dawid & Skene (1979) EM truth inference ("DS" in the paper).

Models each worker with a full ``K x K`` confusion matrix
``pi_j[t, l] = P(worker j answers l | true label t)`` plus a class
prior ``rho``.  EM alternates:

* E-step: posterior over each task's true label given current
  parameters;
* M-step: re-estimate confusion matrices and the prior from the
  expected counts (with Laplace smoothing so sparse workers do not
  produce zero rows).

Initialization follows the original paper: start the E-step posteriors
at the majority-vote fractions.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote

_LOG_FLOOR = 1e-12


class DawidSkene(Aggregator):
    """Confusion-matrix EM (DS).

    Parameters
    ----------
    max_iter:
        EM iteration cap.
    tol:
        Convergence threshold on the max absolute posterior change.
    smoothing:
        Laplace pseudo-count for confusion-matrix and prior estimates.
    """

    name = "DS"

    def __init__(
        self, max_iter: int = 100, tol: float = 1e-6, smoothing: float = 0.01
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values

        posteriors = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            prior, confusion = self._m_step(matrix, posteriors)
            # E-step in log space: log P(t_i = t) + sum_j log pi_j[t, l_ij]
            log_post = np.tile(
                np.log(np.maximum(prior, _LOG_FLOOR)), (matrix.num_tasks, 1)
            )
            log_confusion = np.log(np.maximum(confusion, _LOG_FLOOR))
            contributions = log_confusion[workers, :, labels]  # (A, K)
            np.add.at(log_post, tasks, contributions)
            log_post -= log_post.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_post)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)
            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        _prior, confusion = self._m_step(matrix, posteriors)
        reliability = np.einsum("jkk->j", confusion) / num_classes
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=reliability,
            iterations=iteration,
            converged=converged,
            extras={"confusion": confusion},
        )

    def _m_step(
        self, matrix: AnswerMatrix, posteriors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Estimate class prior and per-worker confusion matrices."""
        num_classes = matrix.num_classes
        prior = posteriors.sum(axis=0) + self.smoothing
        prior /= prior.sum()
        counts = np.zeros((matrix.num_workers, num_classes, num_classes))
        np.add.at(
            counts,
            (matrix.worker_indices, slice(None), matrix.label_values),
            posteriors[matrix.task_indices],
        )
        counts += self.smoothing
        confusion = counts / counts.sum(axis=2, keepdims=True)
        return prior, confusion
