"""EBCC (Li, Rubinstein & Cohn, ICML 2019) — enhanced BCC.

EBCC extends BCC with latent *subtypes*: each true class ``k`` is a
mixture of ``M`` subtypes, and a worker's confusion behaviour depends
on the (class, subtype) pair rather than the class alone.  Correlated
workers — the phenomenon BCC cannot capture — emerge because workers
that confuse the same subtype err together.

We infer the model with mean-field variational Bayes over

* ``q(t_i, s_i)`` — joint categorical over ``K x M`` (class, subtype);
* ``q(rho)``      — Dirichlet over classes;
* ``q(tau_k)``    — Dirichlet over subtypes within class ``k``;
* ``q(nu_j[k,m])`` — Dirichlet confusion row per worker and
  (class, subtype).

With ``M = 1`` the model reduces exactly to BCC, which the test suite
verifies.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote


class Ebcc(Aggregator):
    """Subtype-aware variational BCC.

    Parameters
    ----------
    num_subtypes:
        Subtypes per class (``M``); the EBCC paper uses small values.
    prior_strength, subtype_prior:
        Dirichlet concentrations on the class prior and the per-class
        subtype mixture.
    diagonal_prior, off_diagonal_prior:
        Confusion-row pseudo-counts (diagonally dominant by default).
    max_iter, tol:
        VB iteration cap and convergence threshold.
    seed:
        Seed for the small random symmetry-breaking perturbation of the
        initial responsibilities (subtypes are exchangeable a priori).
    """

    name = "EBCC"

    def __init__(
        self,
        num_subtypes: int = 2,
        prior_strength: float = 1.0,
        subtype_prior: float = 1.0,
        diagonal_prior: float = 2.0,
        off_diagonal_prior: float = 1.0,
        max_iter: int = 200,
        tol: float = 1e-6,
        seed: int = 0,
    ):
        if num_subtypes < 1:
            raise ValueError("num_subtypes must be >= 1")
        if min(prior_strength, subtype_prior, diagonal_prior,
               off_diagonal_prior) <= 0:
            raise ValueError("Dirichlet pseudo-counts must be positive")
        self.num_subtypes = num_subtypes
        self.prior_strength = prior_strength
        self.subtype_prior = subtype_prior
        self.diagonal_prior = diagonal_prior
        self.off_diagonal_prior = off_diagonal_prior
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        num_subtypes = self.num_subtypes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values
        rng = np.random.default_rng(self.seed)

        confusion_prior = np.full(
            (num_classes, num_subtypes, num_classes), self.off_diagonal_prior
        )
        for klass in range(num_classes):
            confusion_prior[klass, :, klass] = self.diagonal_prior

        # Initialize responsibilities r[i, k, m] from majority vote,
        # spread over subtypes with a tiny random tilt to break symmetry.
        class_post = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        tilt = rng.uniform(0.9, 1.1, size=(matrix.num_tasks, 1, num_subtypes))
        responsibilities = class_post[:, :, None] * tilt / num_subtypes
        responsibilities /= responsibilities.sum(axis=(1, 2), keepdims=True)

        converged = False
        iteration = 0
        confusion_counts = np.zeros(
            (matrix.num_workers, num_classes, num_subtypes, num_classes)
        )
        for iteration in range(1, self.max_iter + 1):
            class_marginal = responsibilities.sum(axis=2)  # (I, K)

            # q(rho)
            rho_counts = self.prior_strength + class_marginal.sum(axis=0)
            expected_log_rho = digamma(rho_counts) - digamma(rho_counts.sum())

            # q(tau_k)
            tau_counts = self.subtype_prior + responsibilities.sum(axis=0)
            expected_log_tau = digamma(tau_counts) - digamma(
                tau_counts.sum(axis=1, keepdims=True)
            )

            # q(nu_j[k, m])
            confusion_counts[:] = confusion_prior
            np.add.at(
                confusion_counts,
                (workers, slice(None), slice(None), labels),
                responsibilities[tasks],
            )
            expected_log_confusion = digamma(confusion_counts) - digamma(
                confusion_counts.sum(axis=3, keepdims=True)
            )

            # q(t_i, s_i)
            log_resp = np.tile(
                expected_log_rho[:, None] + expected_log_tau,
                (matrix.num_tasks, 1, 1),
            )
            contributions = expected_log_confusion[workers, :, :, labels]
            np.add.at(log_resp, tasks, contributions)
            log_resp -= log_resp.max(axis=(1, 2), keepdims=True)
            new_responsibilities = np.exp(log_resp)
            new_responsibilities /= new_responsibilities.sum(
                axis=(1, 2), keepdims=True
            )

            change = np.abs(
                new_responsibilities.sum(axis=2) - class_marginal
            ).max()
            responsibilities = new_responsibilities
            if change < self.tol:
                converged = True
                break

        posteriors = responsibilities.sum(axis=2)
        posteriors /= posteriors.sum(axis=1, keepdims=True)
        mean_confusion = confusion_counts / confusion_counts.sum(
            axis=3, keepdims=True
        )
        # Reliability: average diagonal over (class, subtype) cells.
        reliability = (
            np.einsum("jkmk->j", mean_confusion) / (num_classes * num_subtypes)
        )
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=reliability,
            iterations=iteration,
            converged=converged,
            extras={"responsibilities": responsibilities},
        )
