"""Majority-voting variants from the paper's related work [12], [15].

Sheng et al. ("Majority Voting and Pairing with Multiple Noisy
Labeling", TKDE) propose refinements of plain majority voting that keep
the uncertainty information the paper laments losing in Eq. 5:

* **MV-Freq** — label by vote frequency; the posterior *is* the vote
  fraction (plain MV with soft output).
* **MV-Beta** — treat the (yes, no) counts as observations of a
  Bernoulli rate with a uniform Beta prior; the label's certainty is
  the posterior probability that the rate exceeds 1/2, i.e.
  ``P(p > 0.5 | votes) = 1 - BetaCDF(0.5; yes+1, no+1)``.  This damps
  confidence on low-redundancy tasks far more than raw frequency.
* **Paired-MV** — when certainty is low, instead of committing to one
  label, emit *both* labels as weighted training examples.  As an
  aggregator it reports the frequency posterior; the weighted pairs are
  exposed via :meth:`PairedVote.paired_examples` for downstream
  learners.

These are binary-classification strategies (the setting of [15] and of
this paper's decision-making tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import beta as beta_distribution

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty


def _binary_vote_counts(matrix: AnswerMatrix) -> np.ndarray:
    if matrix.num_classes != 2:
        raise ValueError("majority-voting variants support binary labels")
    return matrix.vote_counts()


class MvFreq(Aggregator):
    """MV-Freq: soft majority voting by raw vote frequency."""

    name = "MV-Freq"

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        counts = _binary_vote_counts(matrix)
        totals = counts.sum(axis=1, keepdims=True)
        unvoted = totals[:, 0] == 0
        counts[unvoted] = 1.0
        totals = counts.sum(axis=1, keepdims=True)
        return AggregationResult(posteriors=counts / totals)


class MvBeta(Aggregator):
    """MV-Beta: Beta-posterior certainty of the majority label.

    Parameters
    ----------
    prior_alpha, prior_beta:
        Beta prior pseudo-counts (uniform prior by default).
    """

    name = "MV-Beta"

    def __init__(self, prior_alpha: float = 1.0, prior_beta: float = 1.0):
        if prior_alpha <= 0 or prior_beta <= 0:
            raise ValueError("Beta prior pseudo-counts must be positive")
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        counts = _binary_vote_counts(matrix)
        positives = counts[:, 1] + self.prior_alpha
        negatives = counts[:, 0] + self.prior_beta
        # P(p > 1/2 | votes) under Beta(positives, negatives).
        certainty_positive = beta_distribution.sf(0.5, positives, negatives)
        posteriors = np.stack(
            [1.0 - certainty_positive, certainty_positive], axis=1
        )
        return AggregationResult(posteriors=posteriors)


@dataclass(frozen=True)
class PairedExample:
    """One weighted training example emitted by Paired-MV."""

    task: int
    label: int
    weight: float


class PairedVote(Aggregator):
    """Paired-MV: emit both labels of uncertain tasks as weighted pairs.

    Tasks whose MV-Beta certainty is at least ``certainty_threshold``
    are committed to the majority label with weight 1; the rest emit
    *two* examples weighted by the label frequencies, so a downstream
    learner sees the uncertainty instead of a hard (possibly wrong)
    label.

    Parameters
    ----------
    certainty_threshold:
        Certainty level above which a single hard example is emitted.
    """

    name = "Paired-MV"

    def __init__(self, certainty_threshold: float = 0.8):
        if not 0.5 <= certainty_threshold <= 1.0:
            raise ValueError(
                "certainty_threshold must lie in [0.5, 1.0]"
            )
        self.certainty_threshold = certainty_threshold
        self._last_examples: list[PairedExample] | None = None

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        counts = _binary_vote_counts(matrix)
        totals = counts.sum(axis=1, keepdims=True)
        unvoted = totals[:, 0] == 0
        counts[unvoted] = 1.0
        totals = counts.sum(axis=1, keepdims=True)
        frequency = counts / totals

        certainty = MvBeta().fit(matrix).posteriors.max(axis=1)
        examples: list[PairedExample] = []
        for task in range(matrix.num_tasks):
            majority = int(np.argmax(frequency[task]))
            if certainty[task] >= self.certainty_threshold:
                examples.append(
                    PairedExample(task=task, label=majority, weight=1.0)
                )
            else:
                for label in (0, 1):
                    examples.append(
                        PairedExample(
                            task=task,
                            label=label,
                            weight=float(frequency[task, label]),
                        )
                    )
        self._last_examples = examples
        return AggregationResult(
            posteriors=frequency,
            extras={"paired_examples": examples},
        )

    def paired_examples(self) -> list[PairedExample]:
        """The weighted example set of the most recent :meth:`fit`."""
        if self._last_examples is None:
            raise RuntimeError("call fit() before paired_examples()")
        return list(self._last_examples)
