"""BCC (Kim & Ghahramani, AISTATS 2012) — Bayesian classifier combination.

The Bayesian treatment of the Dawid-Skene model: Dirichlet priors on
the class prior and on every row of every worker's confusion matrix,
inferred with mean-field variational Bayes.  The coordinate updates
are:

* ``q(t_i)``   — categorical, from expected log prior and expected log
  confusion entries of the task's annotations;
* ``q(rho)``   — Dirichlet with expected class counts;
* ``q(pi_j[t])`` — Dirichlet with expected (truth, answer) counts.

Expected log parameters use the digamma function; this is the standard
VB-EM for discrete mixtures.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote


class Bcc(Aggregator):
    """Mean-field variational BCC.

    Parameters
    ----------
    prior_strength:
        Symmetric Dirichlet concentration on the class prior.
    diagonal_prior, off_diagonal_prior:
        Dirichlet pseudo-counts on each confusion row — diagonally
        dominant by default, encoding "workers are better than chance".
    max_iter, tol:
        VB iteration cap and posterior-change convergence threshold.
    """

    name = "BCC"

    def __init__(
        self,
        prior_strength: float = 1.0,
        diagonal_prior: float = 2.0,
        off_diagonal_prior: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-6,
    ):
        if prior_strength <= 0 or diagonal_prior <= 0 or off_diagonal_prior <= 0:
            raise ValueError("Dirichlet pseudo-counts must be positive")
        self.prior_strength = prior_strength
        self.diagonal_prior = diagonal_prior
        self.off_diagonal_prior = off_diagonal_prior
        self.max_iter = max_iter
        self.tol = tol

    def _confusion_prior(self, num_classes: int) -> np.ndarray:
        prior = np.full(
            (num_classes, num_classes), self.off_diagonal_prior
        )
        np.fill_diagonal(prior, self.diagonal_prior)
        return prior

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values
        confusion_prior = self._confusion_prior(num_classes)

        posteriors = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        converged = False
        iteration = 0
        confusion_counts = np.zeros(
            (matrix.num_workers, num_classes, num_classes)
        )
        for iteration in range(1, self.max_iter + 1):
            # q(rho): Dirichlet(prior_strength + expected class counts)
            rho_counts = self.prior_strength + posteriors.sum(axis=0)
            expected_log_rho = digamma(rho_counts) - digamma(rho_counts.sum())

            # q(pi_j[t]): Dirichlet(confusion prior + expected counts)
            confusion_counts[:] = confusion_prior
            np.add.at(
                confusion_counts,
                (workers, slice(None), labels),
                posteriors[tasks],
            )
            expected_log_confusion = digamma(confusion_counts) - digamma(
                confusion_counts.sum(axis=2, keepdims=True)
            )

            # q(t_i): categorical from expected log joint.
            log_post = np.tile(expected_log_rho, (matrix.num_tasks, 1))
            contributions = expected_log_confusion[workers, :, labels]
            np.add.at(log_post, tasks, contributions)
            log_post -= log_post.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_post)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        mean_confusion = confusion_counts / confusion_counts.sum(
            axis=2, keepdims=True
        )
        reliability = np.einsum("jkk->j", mean_confusion) / num_classes
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=reliability,
            iterations=iteration,
            converged=converged,
            extras={"confusion": mean_confusion},
        )
