"""Name-based registry of the aggregation baselines.

The experiment harness refers to aggregators by the names the paper
uses (MV, DS, ZC, GLAD, CRH, BWA, BCC, EBCC); this module maps those
names to configured instances.
"""

from __future__ import annotations

from typing import Callable

from .base import Aggregator
from .bcc import Bcc
from .bwa import Bwa
from .crh import Crh
from .dawid_skene import DawidSkene
from .ebcc import Ebcc
from .glad import Glad
from .gibbs import GibbsDawidSkene
from .kos import Kos
from .majority import MajorityVote
from .spectral import Spectral
from .variants import MvBeta, MvFreq, PairedVote
from .zencrowd import ZenCrowd

_FACTORIES: dict[str, Callable[[], Aggregator]] = {
    "MV": lambda: MajorityVote(smoothing=1.0),
    "DS": DawidSkene,
    "ZC": ZenCrowd,
    "GLAD": Glad,
    "CRH": Crh,
    "BWA": Bwa,
    "BCC": Bcc,
    "EBCC": Ebcc,
    # Related-work MV variants ([12], [15]); not part of the paper's
    # eight-baseline comparison but available everywhere by name.
    "MV-FREQ": MvFreq,
    "MV-BETA": MvBeta,
    "PAIRED-MV": PairedVote,
    # Classic binary truth-inference methods beyond the paper's set.
    "KOS": Kos,
    "SPECTRAL": Spectral,
    "GIBBS-DS": GibbsDawidSkene,
}

#: The eight baselines of the paper's section IV-B, in figure order.
BASELINE_NAMES: tuple[str, ...] = (
    "MV", "DS", "ZC", "GLAD", "CRH", "BWA", "BCC", "EBCC"
)


def available_aggregators() -> tuple[str, ...]:
    """Names accepted by :func:`make_aggregator`."""
    return tuple(_FACTORIES)


def make_aggregator(name: str) -> Aggregator:
    """Instantiate an aggregator by its paper name (case-insensitive)."""
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown aggregator {name!r}; "
            f"available: {', '.join(_FACTORIES)}"
        ) from None
    return factory()


def register_aggregator(
    name: str, factory: Callable[[], Aggregator], overwrite: bool = False
) -> None:
    """Register a custom aggregator factory under ``name``."""
    key = name.upper()
    if key in _FACTORIES and not overwrite:
        raise ValueError(f"aggregator {name!r} is already registered")
    _FACTORIES[key] = factory
