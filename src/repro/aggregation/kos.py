"""KOS (Karger, Oh & Shah, 2011) — iterative belief propagation.

A classic truth-inference baseline beyond the paper's eight: message
passing on the bipartite task-worker graph.  Answers are mapped to
±1; task messages aggregate worker messages weighted by the answers,
worker messages aggregate task messages, and after convergence a
task's sign decides its label:

    x_{i->j} = sum_{j' != j} A_{ij'} y_{j'->i}
    y_{j->i} = sum_{i' != i} A_{i'j} x_{i'->j}

Messages are normalized each round for numerical stability.  Designed
for binary tasks (the setting of this paper).
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty


class Kos(Aggregator):
    """Karger-Oh-Shah message passing.

    Parameters
    ----------
    max_iter:
        Message-passing iterations.
    rng:
        Seed for the random initialization of worker messages (the
        original algorithm draws them from N(1, 1)).
    """

    name = "KOS"

    def __init__(self, max_iter: int = 20, rng: int | None = 0):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.max_iter = max_iter
        self.rng = rng

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        if matrix.num_classes != 2:
            raise ValueError("KOS supports binary labels only")
        rng = np.random.default_rng(self.rng)
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        signs = matrix.label_values * 2.0 - 1.0  # {0,1} -> {-1,+1}
        num_edges = signs.size

        # Edge messages, initialized as in the original paper.
        worker_to_task = rng.normal(loc=1.0, scale=1.0, size=num_edges)
        task_to_worker = np.zeros(num_edges)

        for _iteration in range(self.max_iter):
            # Task update: x_{i->j} = sum_{j'!=j} A_{ij'} y_{j'->i}.
            weighted = signs * worker_to_task
            task_totals = np.zeros(matrix.num_tasks)
            np.add.at(task_totals, tasks, weighted)
            task_to_worker = task_totals[tasks] - weighted

            # Worker update: y_{j->i} = sum_{i'!=i} A_{i'j} x_{i'->j}.
            weighted = signs * task_to_worker
            worker_totals = np.zeros(matrix.num_workers)
            np.add.at(worker_totals, workers, weighted)
            worker_to_task = worker_totals[workers] - weighted

            # Normalize to keep magnitudes bounded.
            scale = np.abs(worker_to_task).mean()
            if scale > 0:
                worker_to_task = worker_to_task / scale

        # Final decision statistic per task.
        weighted = signs * worker_to_task
        decision = np.zeros(matrix.num_tasks)
        np.add.at(decision, tasks, weighted)

        # Map the decision margin to a posterior via a logistic squash;
        # tasks with no answers stay at 1/2.
        answered = matrix.answers_per_task() > 0
        positive = np.full(matrix.num_tasks, 0.5)
        positive[answered] = 0.5 * (1.0 + np.tanh(decision[answered]))
        posteriors = np.stack([1.0 - positive, positive], axis=1)

        # Worker reliability estimate: alignment of their answers with
        # the final decisions, rescaled into [0, 1].
        alignment = np.zeros(matrix.num_workers)
        counts = np.bincount(workers, minlength=matrix.num_workers)
        np.add.at(
            alignment, workers, signs * np.sign(decision[tasks])
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            reliability = np.where(
                counts > 0, (alignment / np.maximum(counts, 1) + 1) / 2, 0.5
            )
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=np.clip(reliability, 0.0, 1.0),
            iterations=self.max_iter,
            converged=True,
        )
