"""ZenCrowd (Demartini et al., WWW 2012) — "ZC" in the paper.

A probabilistic EM model with a single reliability parameter per
worker: worker ``j`` answers correctly with probability ``p_j`` and,
when wrong, picks uniformly among the other ``K - 1`` classes.  EM
alternates the per-task label posterior (E-step) with the per-worker
reliability estimate (M-step, the expected fraction of correct
answers).
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote

_LOG_FLOOR = 1e-12


class ZenCrowd(Aggregator):
    """Single-reliability EM (ZC).

    Parameters
    ----------
    max_iter, tol:
        EM iteration cap and posterior-change convergence threshold.
    smoothing:
        Pseudo-counts on the reliability estimate (keeps ``p_j`` off the
        0/1 boundary for workers with few answers).
    initial_reliability:
        Starting value of every ``p_j``.
    """

    name = "ZC"

    def __init__(
        self,
        max_iter: int = 100,
        tol: float = 1e-6,
        smoothing: float = 1.0,
        initial_reliability: float = 0.7,
    ):
        if not 0.0 < initial_reliability < 1.0:
            raise ValueError("initial_reliability must lie in (0, 1)")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.initial_reliability = initial_reliability

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values

        posteriors = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        reliability = np.full(matrix.num_workers, self.initial_reliability)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # E-step: log P(t) uniform prior + per-annotation likelihoods.
            correct = np.log(np.maximum(reliability, _LOG_FLOOR))
            wrong = np.log(
                np.maximum((1.0 - reliability) / max(num_classes - 1, 1),
                           _LOG_FLOOR)
            )
            log_post = np.zeros((matrix.num_tasks, num_classes))
            # contribution[a, t] = correct if t == label else wrong
            contrib = np.tile(wrong[workers][:, None], (1, num_classes))
            contrib[np.arange(labels.size), labels] = correct[workers]
            np.add.at(log_post, tasks, contrib)
            log_post -= log_post.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_post)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            # M-step: expected fraction of correct answers per worker.
            expected_correct = np.zeros(matrix.num_workers)
            np.add.at(
                expected_correct,
                workers,
                new_posteriors[tasks, labels],
            )
            answer_counts = np.bincount(workers, minlength=matrix.num_workers)
            reliability = (expected_correct + self.smoothing) / (
                answer_counts + 2.0 * self.smoothing
            )

            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=reliability,
            iterations=iteration,
            converged=converged,
        )
