"""Ghosh-Kale-McAfee style spectral truth inference.

Another classic baseline beyond the paper's eight: treat the ±1 answer
matrix as a rank-one signal plus noise.  Its leading singular vectors
recover the true labels (up to a global sign) and the worker
reliabilities, because under the symmetric one-coin model

    E[A] = (2 t - 1) (2 p - 1)^T        (tasks x workers)

is exactly rank one.  The global sign ambiguity is resolved by
majority vote.  Binary tasks only.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote


class Spectral(Aggregator):
    """Rank-one SVD truth inference.

    Parameters
    ----------
    temperature:
        Scale applied to the task-side singular vector before the
        logistic squash producing soft posteriors; larger values give
        harder labels.
    """

    name = "SPECTRAL"

    def __init__(self, temperature: float = 3.0):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        if matrix.num_classes != 2:
            raise ValueError("spectral inference supports binary labels")
        dense = matrix.dense(missing=-1).astype(np.float64)
        signed = np.where(dense >= 0, dense * 2.0 - 1.0, 0.0)

        # Leading singular triplet of the (zero-filled) signed matrix.
        left, singular_values, right = np.linalg.svd(
            signed, full_matrices=False
        )
        task_vector = left[:, 0] * np.sqrt(singular_values[0])
        worker_vector = right[0, :] * np.sqrt(singular_values[0])

        # Resolve the global sign with majority voting.
        majority = MajorityVote().fit(matrix).posteriors[:, 1] * 2.0 - 1.0
        if np.dot(np.sign(task_vector), majority) < 0:
            task_vector = -task_vector
            worker_vector = -worker_vector

        positive = 0.5 * (1.0 + np.tanh(self.temperature * task_vector))
        # Tasks with no answers: uniform.
        answered = matrix.answers_per_task() > 0
        positive = np.where(answered, positive, 0.5)
        posteriors = np.stack([1.0 - positive, positive], axis=1)

        # Reliability: empirical alignment of each worker's answers with
        # the inferred label signs estimates (2 p_j - 1) directly — this
        # is properly scale-free, unlike the raw singular vector.
        label_signs = np.sign(task_vector)
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        signed_answers = matrix.label_values * 2.0 - 1.0
        alignment = np.zeros(matrix.num_workers)
        counts = np.bincount(workers, minlength=matrix.num_workers)
        np.add.at(alignment, workers, signed_answers * label_signs[tasks])
        with np.errstate(invalid="ignore"):
            two_p_minus_1 = np.where(
                counts > 0, alignment / np.maximum(counts, 1), 0.0
            )
        reliability = np.clip((two_p_minus_1 + 1.0) / 2.0, 0.0, 1.0)
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=reliability,
            iterations=1,
            converged=True,
        )
