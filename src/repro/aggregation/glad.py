"""GLAD (Whitehill et al., NeurIPS 2009) — "GLAD" in the paper.

Extends the single-reliability model with per-task difficulty: worker
``j`` answers task ``i`` correctly with probability
``sigma(alpha_j * beta_i)``, where ``alpha_j`` is worker ability
(can be negative: adversarial) and ``beta_i = exp(b_i) > 0`` is the
inverse difficulty.  Wrong answers are uniform over the other classes.

EM alternates the label posterior (E-step) with gradient ascent on
``alpha`` and ``b = log beta`` of the expected complete-data
log-likelihood (M-step).  The original binary formulation generalizes
to ``K`` classes the same way ZenCrowd does.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote

_LOG_FLOOR = 1e-12


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * x))


class Glad(Aggregator):
    """Ability x difficulty EM with gradient M-step.

    Parameters
    ----------
    max_iter:
        Outer EM iteration cap.
    gradient_steps, learning_rate:
        Inner gradient-ascent schedule for the M-step.
    tol:
        Posterior-change convergence threshold.
    prior_alpha, prior_beta_log:
        Gaussian prior means for worker ability and log inverse
        difficulty (light L2 regularization toward these values).
    regularization:
        Strength of the Gaussian priors.
    """

    name = "GLAD"

    def __init__(
        self,
        max_iter: int = 50,
        gradient_steps: int = 20,
        learning_rate: float = 0.1,
        tol: float = 1e-5,
        prior_alpha: float = 1.0,
        prior_beta_log: float = 1.0,
        regularization: float = 0.01,
    ):
        self.max_iter = max_iter
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.tol = tol
        self.prior_alpha = prior_alpha
        self.prior_beta_log = prior_beta_log
        self.regularization = regularization

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values

        posteriors = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        alpha = np.full(matrix.num_workers, self.prior_alpha)
        beta_log = np.full(matrix.num_tasks, self.prior_beta_log)

        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # E-step with current correctness probabilities.
            prob_correct = np.clip(
                _sigmoid(alpha[workers] * np.exp(beta_log[tasks])),
                _LOG_FLOOR,
                1.0 - _LOG_FLOOR,
            )
            log_correct = np.log(prob_correct)
            log_wrong = np.log(
                (1.0 - prob_correct) / max(num_classes - 1, 1)
            )
            log_post = np.zeros((matrix.num_tasks, num_classes))
            contrib = np.tile(log_wrong[:, None], (1, num_classes))
            contrib[np.arange(labels.size), labels] = log_correct
            np.add.at(log_post, tasks, contrib)
            log_post -= log_post.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_post)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            # M-step: gradient ascent on alpha and beta_log.
            # expected correctness indicator per annotation:
            weight_correct = new_posteriors[tasks, labels]
            alpha, beta_log = self._m_step(
                matrix, weight_correct, alpha, beta_log
            )

            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        reliability = _sigmoid(alpha * np.exp(self.prior_beta_log))
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=np.clip(reliability, 0.0, 1.0),
            iterations=iteration,
            converged=converged,
            extras={"alpha": alpha, "beta": np.exp(beta_log)},
        )

    def _m_step(
        self,
        matrix: AnswerMatrix,
        weight_correct: np.ndarray,
        alpha: np.ndarray,
        beta_log: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gradient ascent on the expected log-likelihood.

        For each annotation with correctness weight ``w`` the objective
        term is ``w log sigma(a b) + (1 - w) log(1 - sigma(a b))`` with
        ``b = exp(beta_log)``; its derivative w.r.t. ``a b`` is
        ``w - sigma(a b)``.
        """
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        alpha = alpha.copy()
        beta_log = beta_log.copy()
        for _step in range(self.gradient_steps):
            beta = np.exp(beta_log)
            margin = alpha[workers] * beta[tasks]
            residual = weight_correct - _sigmoid(margin)
            grad_alpha = np.zeros_like(alpha)
            np.add.at(grad_alpha, workers, residual * beta[tasks])
            grad_beta_log = np.zeros_like(beta_log)
            np.add.at(
                grad_beta_log, tasks, residual * alpha[workers] * beta[tasks]
            )
            grad_alpha -= self.regularization * (alpha - self.prior_alpha)
            grad_beta_log -= self.regularization * (
                beta_log - self.prior_beta_log
            )
            alpha += self.learning_rate * grad_alpha
            beta_log += self.learning_rate * grad_beta_log
            # Keep beta_log in a sane range to avoid overflow in exp.
            np.clip(beta_log, -6.0, 6.0, out=beta_log)
        return alpha, beta_log
