"""BWA (Li, Rubinstein & Cohn, WWW 2019) — Bayesian weighted aggregation.

A conjugate Bayesian model for adjudicating redundant crowd labels:
worker ``j`` has an unknown accuracy with a Beta prior; truths and
accuracies are inferred with iterative expectation maximization, where
each step is available in closed form thanks to conjugacy:

* truth step — per-task posterior from log-odds-weighted votes, using
  the posterior-mean worker accuracies;
* accuracy step — Beta posterior update with the *expected* numbers of
  correct/incorrect answers under the current truth posteriors.

The paper behind "BWA" treats multi-class via a one-vs-rest symmetric
noise model, which we adopt: a wrong worker picks uniformly among the
other ``K - 1`` classes.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote

_LOG_FLOOR = 1e-12


class Bwa(Aggregator):
    """Conjugate Bayesian weighted aggregation (BWA).

    Parameters
    ----------
    prior_correct, prior_incorrect:
        Beta prior pseudo-counts on each worker's accuracy.  The default
        ``Beta(4, 1)`` encodes the paper's optimism that crowd workers
        are mostly reliable.
    max_iter, tol:
        Iteration cap and posterior-change convergence threshold.
    """

    name = "BWA"

    def __init__(
        self,
        prior_correct: float = 4.0,
        prior_incorrect: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-6,
    ):
        if prior_correct <= 0 or prior_incorrect <= 0:
            raise ValueError("Beta prior pseudo-counts must be positive")
        self.prior_correct = prior_correct
        self.prior_incorrect = prior_incorrect
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values
        answer_counts = np.bincount(workers, minlength=matrix.num_workers)

        posteriors = MajorityVote(smoothing=1.0).fit(matrix).posteriors
        converged = False
        iteration = 0
        accuracy = np.full(
            matrix.num_workers,
            self.prior_correct / (self.prior_correct + self.prior_incorrect),
        )
        for iteration in range(1, self.max_iter + 1):
            # Accuracy step: Beta posterior mean with expected counts.
            expected_correct = np.zeros(matrix.num_workers)
            np.add.at(expected_correct, workers, posteriors[tasks, labels])
            accuracy = (expected_correct + self.prior_correct) / (
                answer_counts + self.prior_correct + self.prior_incorrect
            )

            # Truth step: log-odds weighted votes.
            correct = np.log(np.maximum(accuracy, _LOG_FLOOR))
            wrong = np.log(
                np.maximum(
                    (1.0 - accuracy) / max(num_classes - 1, 1), _LOG_FLOOR
                )
            )
            log_post = np.zeros((matrix.num_tasks, num_classes))
            contrib = np.tile(wrong[workers][:, None], (1, num_classes))
            contrib[np.arange(labels.size), labels] = correct[workers]
            np.add.at(log_post, tasks, contrib)
            log_post -= log_post.max(axis=1, keepdims=True)
            new_posteriors = np.exp(log_post)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=accuracy,
            iterations=iteration,
            converged=converged,
        )
