"""Gibbs-sampling Dawid-Skene ("MCMC sampling" aggregation family).

The paper's introduction lists Markov-chain Monte Carlo sampling among
the aggregation strategies.  This is the standard collapsed-ish Gibbs
sampler for the Bayesian Dawid-Skene model:

* priors — Dirichlet on the class distribution and on every row of
  every worker's confusion matrix;
* sweep — sample each task's truth from its full conditional, then
  sample the class prior and confusion matrices from their (Dirichlet)
  conditionals given the sampled truths;
* output — posterior marginals estimated from the post-burn-in truth
  samples.

Slower than EM/VB but yields calibrated posterior uncertainty rather
than a point estimate's pseudo-posterior.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty
from .majority import MajorityVote

_LOG_FLOOR = 1e-12


class GibbsDawidSkene(Aggregator):
    """MCMC inference for the Bayesian Dawid-Skene model.

    Parameters
    ----------
    num_samples:
        Post-burn-in Gibbs sweeps contributing to the posterior.
    burn_in:
        Discarded initial sweeps.
    prior_strength, diagonal_prior, off_diagonal_prior:
        Dirichlet hyperparameters (diagonally dominant confusion prior).
    seed:
        Sampler seed.
    """

    name = "GIBBS-DS"

    def __init__(
        self,
        num_samples: int = 120,
        burn_in: int = 30,
        prior_strength: float = 1.0,
        diagonal_prior: float = 2.0,
        off_diagonal_prior: float = 1.0,
        seed: int = 0,
    ):
        if num_samples < 1 or burn_in < 0:
            raise ValueError("need num_samples >= 1 and burn_in >= 0")
        if min(prior_strength, diagonal_prior, off_diagonal_prior) <= 0:
            raise ValueError("Dirichlet hyperparameters must be positive")
        self.num_samples = num_samples
        self.burn_in = burn_in
        self.prior_strength = prior_strength
        self.diagonal_prior = diagonal_prior
        self.off_diagonal_prior = off_diagonal_prior
        self.seed = seed

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        num_classes = matrix.num_classes
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values
        rng = np.random.default_rng(self.seed)

        confusion_prior = np.full(
            (num_classes, num_classes), self.off_diagonal_prior
        )
        np.fill_diagonal(confusion_prior, self.diagonal_prior)

        # Initialize truths at the majority vote.
        truths = MajorityVote(smoothing=1.0).fit(matrix).predictions.copy()
        counts_marginal = np.zeros((matrix.num_tasks, num_classes))

        for sweep in range(self.burn_in + self.num_samples):
            # --- sample class prior rho | truths -----------------------
            class_counts = np.bincount(truths, minlength=num_classes)
            rho = rng.dirichlet(self.prior_strength + class_counts)

            # --- sample confusion matrices pi_j | truths ----------------
            confusion_counts = np.zeros(
                (matrix.num_workers, num_classes, num_classes)
            )
            np.add.at(
                confusion_counts, (workers, truths[tasks], labels), 1.0
            )
            confusion = np.empty_like(confusion_counts)
            alpha = confusion_counts + confusion_prior
            # Dirichlet sampling row by row via gamma draws (vectorized).
            gamma = rng.gamma(shape=alpha)
            confusion = gamma / gamma.sum(axis=2, keepdims=True)

            # --- sample truths t_i | everything else --------------------
            log_post = np.tile(
                np.log(np.maximum(rho, _LOG_FLOOR)),
                (matrix.num_tasks, 1),
            )
            log_confusion = np.log(np.maximum(confusion, _LOG_FLOOR))
            contributions = log_confusion[workers, :, labels]
            np.add.at(log_post, tasks, contributions)
            log_post -= log_post.max(axis=1, keepdims=True)
            probabilities = np.exp(log_post)
            probabilities /= probabilities.sum(axis=1, keepdims=True)
            cumulative = probabilities.cumsum(axis=1)
            draws = rng.random((matrix.num_tasks, 1))
            truths = (draws > cumulative).sum(axis=1)

            if sweep >= self.burn_in:
                counts_marginal[np.arange(matrix.num_tasks), truths] += 1.0

        posteriors = counts_marginal / counts_marginal.sum(
            axis=1, keepdims=True
        )
        # Posterior-mean worker reliability from the last sweep's
        # confusion sample (cheap; diagonal average).
        reliability = np.einsum("jkk->j", confusion) / num_classes
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=np.clip(reliability, 0.0, 1.0),
            iterations=self.burn_in + self.num_samples,
            converged=True,
            extras={"confusion": confusion},
        )
