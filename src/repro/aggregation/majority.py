"""Majority voting and its weighted variant (paper Eq. 5).

The simplest aggregation strategy: each task's label is the class most
workers chose.  ``MajorityVote`` returns *smoothed* vote fractions as
posteriors (so the HC belief initialization retains the vote
uncertainty, per paper Eq. 15/16), with MAP predictions identical to
plain majority rule.  ``WeightedMajorityVote`` weights each worker's
vote by ``log(p / (1 - p))`` of a supplied accuracy estimate, the
Nitzan-Paroush optimal decision rule [11].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty


class MajorityVote(Aggregator):
    """Plain majority voting.

    Parameters
    ----------
    smoothing:
        Laplace pseudo-count added per class so unanimously-voted tasks
        keep a sliver of uncertainty (0 reproduces raw fractions).
    """

    name = "MV"

    def __init__(self, smoothing: float = 0.0):
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.smoothing = smoothing

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        counts = matrix.vote_counts() + self.smoothing
        totals = counts.sum(axis=1, keepdims=True)
        # Tasks with no votes fall back to uniform.
        no_votes = totals[:, 0] == 0
        counts[no_votes] = 1.0
        totals = counts.sum(axis=1, keepdims=True)
        return AggregationResult(posteriors=counts / totals)


class WeightedMajorityVote(Aggregator):
    """Accuracy-weighted voting with log-odds weights.

    Each worker ``j`` with accuracy ``p_j`` contributes weight
    ``log(p_j / (1 - p_j))`` to the class they vote for; the posterior
    is the softmax-normalized exponent, which for binary classes equals
    the exact Bayesian posterior under independent symmetric noise.
    """

    name = "WMV"

    def __init__(self, accuracies: Sequence[float], clip: float = 1e-3):
        accuracies = np.asarray(accuracies, dtype=np.float64)
        if np.any(accuracies < 0) or np.any(accuracies > 1):
            raise ValueError("accuracies must lie in [0, 1]")
        if not 0 < clip < 0.5:
            raise ValueError("clip must lie in (0, 0.5)")
        self.accuracies = np.clip(accuracies, clip, 1.0 - clip)

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        if self.accuracies.shape[0] < matrix.num_workers:
            raise ValueError(
                f"need an accuracy for each of {matrix.num_workers} workers"
            )
        weights = np.log(self.accuracies / (1.0 - self.accuracies))
        scores = np.zeros((matrix.num_tasks, matrix.num_classes))
        np.add.at(
            scores,
            (matrix.task_indices, matrix.label_values),
            weights[matrix.worker_indices],
        )
        # Log-odds scores -> posterior via softmax (stable).
        scores -= scores.max(axis=1, keepdims=True)
        exponent = np.exp(scores)
        posteriors = exponent / exponent.sum(axis=1, keepdims=True)
        return AggregationResult(
            posteriors=posteriors, worker_reliability=self.accuracies.copy()
        )
