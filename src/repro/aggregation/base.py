"""Shared interface for label-aggregation (truth-inference) algorithms.

All eight baselines of the paper's section IV-B (MV, DS, ZC, GLAD, CRH,
BWA, BCC, EBCC) consume the same input — a sparse matrix of worker
answers — and produce per-task posterior distributions over classes.
In the HC pipeline those posteriors initialize the belief state of the
preliminary tier (paper section III-A / IV-C4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Annotation:
    """One worker's label for one task."""

    task: int
    worker: int
    label: int

    def __post_init__(self) -> None:
        if self.task < 0 or self.worker < 0 or self.label < 0:
            raise ValueError("task, worker and label indices must be >= 0")


class AnswerMatrix:
    """A sparse task x worker answer matrix.

    Parameters
    ----------
    annotations:
        The crowd's answers.  A (task, worker) pair may appear at most
        once.
    num_tasks, num_workers, num_classes:
        Optional explicit sizes; inferred from the annotations when
        omitted.  Explicit sizes allow tasks or workers with no answers.
    """

    def __init__(
        self,
        annotations: Iterable[Annotation | tuple[int, int, int]],
        num_tasks: int | None = None,
        num_workers: int | None = None,
        num_classes: int | None = None,
    ):
        normalized: list[Annotation] = []
        for item in annotations:
            if not isinstance(item, Annotation):
                item = Annotation(*item)
            normalized.append(item)
        seen: set[tuple[int, int]] = set()
        for annotation in normalized:
            key = (annotation.task, annotation.worker)
            if key in seen:
                raise ValueError(
                    f"duplicate annotation for task {annotation.task}, "
                    f"worker {annotation.worker}"
                )
            seen.add(key)
        if not normalized and (
            num_tasks is None or num_workers is None or num_classes is None
        ):
            raise ValueError(
                "an empty AnswerMatrix needs explicit num_tasks, "
                "num_workers and num_classes"
            )
        self._annotations: tuple[Annotation, ...] = tuple(normalized)
        max_task = max((a.task for a in normalized), default=-1)
        max_worker = max((a.worker for a in normalized), default=-1)
        max_label = max((a.label for a in normalized), default=-1)
        self._num_tasks = num_tasks if num_tasks is not None else max_task + 1
        self._num_workers = (
            num_workers if num_workers is not None else max_worker + 1
        )
        self._num_classes = (
            num_classes if num_classes is not None else max(max_label + 1, 2)
        )
        if max_task >= self._num_tasks:
            raise ValueError("annotation task index out of range")
        if max_worker >= self._num_workers:
            raise ValueError("annotation worker index out of range")
        if max_label >= self._num_classes:
            raise ValueError("annotation label out of range")
        self._tasks = np.array([a.task for a in normalized], dtype=np.int64)
        self._workers = np.array([a.worker for a in normalized], dtype=np.int64)
        self._labels = np.array([a.label for a in normalized], dtype=np.int64)

    # -- accessors -----------------------------------------------------

    @property
    def annotations(self) -> tuple[Annotation, ...]:
        return self._annotations

    @property
    def num_tasks(self) -> int:
        return self._num_tasks

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def num_annotations(self) -> int:
        return len(self._annotations)

    @property
    def task_indices(self) -> np.ndarray:
        """Task index of each annotation (parallel to ``label_values``)."""
        return self._tasks

    @property
    def worker_indices(self) -> np.ndarray:
        return self._workers

    @property
    def label_values(self) -> np.ndarray:
        return self._labels

    def dense(self, missing: int = -1) -> np.ndarray:
        """``(num_tasks, num_workers)`` matrix with ``missing`` fill."""
        matrix = np.full((self._num_tasks, self._num_workers), missing,
                         dtype=np.int64)
        matrix[self._tasks, self._workers] = self._labels
        return matrix

    def one_hot(self) -> np.ndarray:
        """``(num_tasks, num_workers, num_classes)`` 0/1 indicator tensor.

        Entry ``[i, j, l]`` is 1 iff worker ``j`` labeled task ``i`` as
        ``l``.  Dense; fine at the scales of this reproduction.
        """
        tensor = np.zeros(
            (self._num_tasks, self._num_workers, self._num_classes)
        )
        tensor[self._tasks, self._workers, self._labels] = 1.0
        return tensor

    def vote_counts(self) -> np.ndarray:
        """``(num_tasks, num_classes)`` per-class vote counts."""
        counts = np.zeros((self._num_tasks, self._num_classes))
        np.add.at(counts, (self._tasks, self._labels), 1.0)
        return counts

    def answers_per_task(self) -> np.ndarray:
        """Number of answers each task received."""
        return np.bincount(self._tasks, minlength=self._num_tasks)

    def restrict_workers(self, worker_indices: Sequence[int]) -> "AnswerMatrix":
        """Sub-matrix keeping only the given workers (indices preserved)."""
        keep = set(worker_indices)
        return AnswerMatrix(
            (a for a in self._annotations if a.worker in keep),
            num_tasks=self._num_tasks,
            num_workers=self._num_workers,
            num_classes=self._num_classes,
        )

    def __repr__(self) -> str:
        return (
            f"AnswerMatrix(tasks={self._num_tasks}, "
            f"workers={self._num_workers}, classes={self._num_classes}, "
            f"annotations={self.num_annotations})"
        )


@dataclass
class AggregationResult:
    """Output of a truth-inference run.

    Attributes
    ----------
    posteriors:
        ``(num_tasks, num_classes)`` rows summing to 1: the inferred
        distribution over each task's true label.
    worker_reliability:
        Optional per-worker scalar reliability estimate (accuracy-like,
        in [0, 1]) when the model produces one.
    iterations:
        Number of optimization iterations actually run.
    converged:
        Whether the stopping tolerance was reached before ``max_iter``.
    """

    posteriors: np.ndarray
    worker_reliability: np.ndarray | None = None
    iterations: int = 0
    converged: bool = True
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.posteriors = np.asarray(self.posteriors, dtype=np.float64)
        if self.posteriors.ndim != 2:
            raise ValueError("posteriors must be (num_tasks, num_classes)")
        row_sums = self.posteriors.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError("posterior rows must sum to 1")

    @property
    def predictions(self) -> np.ndarray:
        """MAP label per task (ties broken toward the lower class)."""
        return np.argmax(self.posteriors, axis=1)

    def accuracy(self, ground_truth: Sequence[int]) -> float:
        """Fraction of tasks whose MAP label matches the ground truth."""
        ground_truth = np.asarray(ground_truth)
        if ground_truth.shape[0] != self.posteriors.shape[0]:
            raise ValueError("need one ground-truth label per task")
        return float(np.mean(self.predictions == ground_truth))


class Aggregator(ABC):
    """Truth-inference strategy interface."""

    #: Registry / report name, e.g. ``"DS"``.
    name: str = "base"

    @abstractmethod
    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        """Infer per-task label posteriors from the answer matrix."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def check_not_empty(matrix: AnswerMatrix) -> None:
    """Common guard: aggregators need at least one annotation."""
    if matrix.num_annotations == 0:
        raise ValueError("cannot aggregate an empty answer matrix")
