"""CRH (Li et al., SIGMOD 2014) — conflict resolution on heterogeneous data.

CRH frames truth inference as an optimization: find truths and source
(worker) weights minimizing the weighted distance between each source's
claims and the truths,

    min_{X*, W}  sum_j w_j * loss(X_j, X*)   s.t.  sum_j exp(-w_j) = 1.

For categorical labels with 0/1 loss the block-coordinate solution is:

* truth step — per task, the weighted plurality vote;
* weight step — ``w_j = -log(err_j / sum_k err_k)`` where ``err_j`` is
  worker ``j``'s (smoothed, normalized) disagreement with the current
  truths.

The posterior we report is the weighted vote distribution normalized
per task, so downstream belief initialization sees soft labels.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationResult, Aggregator, AnswerMatrix, check_not_empty

_EPS = 1e-12


class Crh(Aggregator):
    """Block-coordinate CRH for categorical labels.

    Parameters
    ----------
    max_iter, tol:
        Iteration cap and convergence threshold on truth changes.
    smoothing:
        Pseudo-count in the per-worker error-rate estimate.
    """

    name = "CRH"

    def __init__(
        self, max_iter: int = 50, tol: float = 1e-6, smoothing: float = 0.1
    ):
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing

    def fit(self, matrix: AnswerMatrix) -> AggregationResult:
        check_not_empty(matrix)
        tasks = matrix.task_indices
        workers = matrix.worker_indices
        labels = matrix.label_values
        answer_counts = np.bincount(workers, minlength=matrix.num_workers)

        weights = np.ones(matrix.num_workers)
        posteriors = self._truth_step(matrix, weights)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            # Weight step: distance of each worker from current truths
            # under 0/1 loss, using soft truths for stability.
            agreement = posteriors[tasks, labels]
            errors = np.zeros(matrix.num_workers)
            np.add.at(errors, workers, 1.0 - agreement)
            error_rates = (errors + self.smoothing) / (
                answer_counts + 2.0 * self.smoothing
            )
            normalized = error_rates / error_rates.sum()
            weights = -np.log(np.maximum(normalized, _EPS))

            new_posteriors = self._truth_step(matrix, weights)
            change = np.abs(new_posteriors - posteriors).max()
            posteriors = new_posteriors
            if change < self.tol:
                converged = True
                break

        reliability = weights / max(weights.max(), _EPS)
        return AggregationResult(
            posteriors=posteriors,
            worker_reliability=np.clip(reliability, 0.0, 1.0),
            iterations=iteration,
            converged=converged,
            extras={"weights": weights},
        )

    @staticmethod
    def _truth_step(matrix: AnswerMatrix, weights: np.ndarray) -> np.ndarray:
        """Weighted vote distribution per task (rows sum to 1)."""
        scores = np.zeros((matrix.num_tasks, matrix.num_classes))
        np.add.at(
            scores,
            (matrix.task_indices, matrix.label_values),
            weights[matrix.worker_indices],
        )
        # Unanswered tasks fall back to uniform.
        empty = scores.sum(axis=1) == 0
        scores[empty] = 1.0
        return scores / scores.sum(axis=1, keepdims=True)
