"""Label-aggregation (truth-inference) baselines.

The eight algorithms the paper compares against (section IV-B) plus a
weighted-majority variant, all consuming the shared
:class:`~repro.aggregation.base.AnswerMatrix` interface and producing
per-task label posteriors.
"""

from .base import (
    AggregationResult,
    Aggregator,
    Annotation,
    AnswerMatrix,
)
from .bcc import Bcc
from .bwa import Bwa
from .crh import Crh
from .dawid_skene import DawidSkene
from .ebcc import Ebcc
from .gibbs import GibbsDawidSkene
from .glad import Glad
from .kos import Kos
from .majority import MajorityVote, WeightedMajorityVote
from .spectral import Spectral
from .registry import (
    BASELINE_NAMES,
    available_aggregators,
    make_aggregator,
    register_aggregator,
)
from .variants import MvBeta, MvFreq, PairedExample, PairedVote
from .zencrowd import ZenCrowd

__all__ = [
    "AggregationResult",
    "Aggregator",
    "Annotation",
    "AnswerMatrix",
    "BASELINE_NAMES",
    "Bcc",
    "Bwa",
    "Crh",
    "DawidSkene",
    "Ebcc",
    "GibbsDawidSkene",
    "Glad",
    "Kos",
    "MajorityVote",
    "MvBeta",
    "MvFreq",
    "PairedExample",
    "PairedVote",
    "Spectral",
    "WeightedMajorityVote",
    "ZenCrowd",
    "available_aggregators",
    "make_aggregator",
    "register_aggregator",
]
