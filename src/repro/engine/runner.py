"""The sharded campaign entry points, API-compatible with
:func:`~repro.simulation.session.run_hc_session`.

:class:`ParallelCampaignRunner` mirrors the serial pipeline stage for
stage — same crowd split, same initialization, same default answer
source, same resilient-runtime triggers — and swaps in the sharded
execution seams: a :class:`~repro.engine.shards.ShardPool` over the
belief's groups, a :class:`~repro.engine.sharded.ShardedSelector`, a
:class:`~repro.engine.sharded.ShardedUpdateEngine`, and a
:class:`~repro.engine.ledger.LedgerBudget` settling every charge
against a global :class:`~repro.engine.ledger.BudgetLedger`.  Because
each seam is individually bit-identical to its serial counterpart, the
returned result (history, beliefs, labels — and on the resilient path,
the journal) is byte-for-byte the serial run's, for any worker count.

Journals gain one ``{"kind": "engine"}`` record (after the header and
initial checkpoint) remembering the shard layout; a parallel journal is
otherwise identical to a serial one, and
:func:`resume_parallel_session` uses the record to rebuild the same
layout — resuming a killed parallel campaign byte-identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.budget import CostModel
from ..core.hc import RunResult
from ..core.serialization import (
    SerializationError,
    crowd_from_dict,
    factored_belief_from_dict,
    read_journal,
)
from ..core.trust import select_gold_probes
from ..core.workers import Crowd
from ..datasets.schema import CrowdLabelingDataset
from ..simulation.faults import FaultyExpertPanel
from ..simulation.online import OnlineCheckingSession
from ..simulation.oracle import SimulatedExpertPanel
from ..simulation.resilient import ResilientCheckingSession
from ..simulation.session import SessionConfig
from .ledger import BudgetLedger, LedgerBudget
from .sharded import ShardedSelector, ShardedUpdateEngine
from .shards import ShardPool
from .sources import KeyedExpertPanel, ShardedAnswerSource
from .supervisor import SupervisionPolicy


class ParallelCampaignRunner:
    """Run one HC campaign with sharded selection/updates.

    Parameters
    ----------
    dataset, config, aggregator, answer_source:
        Exactly as in :func:`~repro.simulation.session.run_hc_session`.
    jobs:
        Number of shard workers (clamped to the number of task groups).
    inline:
        ``True`` runs shards in-process (no multiprocessing; what tests
        use), ``False`` in spawn-safe child processes; ``None`` (default)
        picks inline when ``jobs == 1``.
    ledger:
        Optional shared :class:`~repro.engine.ledger.BudgetLedger`;
        concurrent campaigns passing the same ledger draw on one budget
        pool without double-spending.  Defaults to a private ledger.
    sharded_collection:
        Fan answer collection out to shard-local panel replicas.
        Requires a partition-independent source and the plain (non-
        resilient) path; ``None`` auto-enables for a
        :class:`~repro.engine.sources.KeyedExpertPanel` there.
    start_method:
        Multiprocessing start method for process shards (spawn-safe
        default).
    policy:
        :class:`~repro.engine.supervisor.SupervisionPolicy` for the
        shard pool (deadline, restart budget, failover); defaults to
        environment-derived settings.
    chaos:
        Optional :class:`~repro.engine.chaos.ChaosPlan` injecting
        transport faults (tests / CI).
    extra_journal_records:
        Extra metadata records journaled *before* the engine record
        (each needs a ``"kind"`` field).  The campaign service stores
        its ``{"kind": "tenant"}`` identity record here.
    """

    def __init__(
        self,
        dataset: CrowdLabelingDataset,
        config: SessionConfig | None = None,
        *,
        jobs: int = 1,
        aggregator=None,
        answer_source=None,
        inline: bool | None = None,
        ledger: BudgetLedger | None = None,
        sharded_collection: bool | None = None,
        start_method: str = "spawn",
        policy: SupervisionPolicy | None = None,
        chaos=None,
        extra_journal_records: Sequence[dict] = (),
    ):
        self._dataset = dataset
        self._config = config or SessionConfig()
        self._jobs = int(jobs)
        self._aggregator = aggregator
        self._answer_source = answer_source
        self._inline = inline
        self._ledger = ledger
        self._sharded_collection = sharded_collection
        self._start_method = start_method
        self._policy = policy
        self._chaos = chaos
        self._extra_journal_records = list(extra_journal_records)
        #: Set by :meth:`prepare`: the campaign's budget ledger (inspect
        #: for reservation/commit accounting) and the shard count used.
        self.ledger: BudgetLedger | None = None
        self.jobs_used: int | None = None
        self.policy_used: SupervisionPolicy | None = None
        #: Set by :meth:`run`: the pool's supervision counters and
        #: incident log (captured before the pool is closed).
        self.supervisor_stats: dict | None = None
        self.supervisor_incidents: list = []
        self._prepared: dict | None = None

    # ------------------------------------------------------------------

    def prepare(self) -> "ParallelCampaignRunner":
        """Build the belief, shard pool and session without running.

        :meth:`run` calls this implicitly; benchmarks call it directly
        so one-time worker startup (process spawn + imports) can be
        measured separately from campaign wall-clock.  Idempotent until
        the prepared campaign is consumed by :meth:`run`.
        """
        if self._prepared is not None:
            return self
        from ..aggregation.registry import make_aggregator
        from ..datasets.grouping import initialize_belief

        dataset, config = self._dataset, self._config
        experts, _preliminary = dataset.split_crowd(config.theta)
        if len(experts) == 0:
            raise ValueError(
                f"no worker reaches theta={config.theta}; cannot form CE"
            )
        aggregator = self._aggregator or make_aggregator(config.initializer)
        belief, _init_result = initialize_belief(
            dataset, aggregator, config.theta, smoothing=config.smoothing,
            belief_epsilon=config.belief_epsilon,
        )
        answer_source = self._answer_source
        if answer_source is None:
            answer_source = SimulatedExpertPanel(
                dataset.ground_truth, rng=np.random.default_rng(config.seed)
            )
        resilient = (
            config.faults is not None
            or config.journal_path is not None
            or config.trust_policy is not None
        )
        sharded_collection = self._sharded_collection
        if sharded_collection is None:
            sharded_collection = (
                not resilient
                and isinstance(answer_source, KeyedExpertPanel)
            )
        if sharded_collection and resilient:
            raise ValueError(
                "sharded collection requires the plain path: the "
                "resilient runtime journals/faults the coordinator-side "
                "answer source"
            )
        inline = self._inline if self._inline is not None else self._jobs == 1
        tracker = LedgerBudget(config.budget, ledger=self._ledger)
        self.ledger = tracker.ledger
        policy = (
            self._policy
            if self._policy is not None
            else SupervisionPolicy.from_env()
        )
        self.policy_used = policy
        pool = ShardPool(
            belief,
            experts,
            self._jobs,
            inline=inline,
            answer_source=answer_source if sharded_collection else None,
            start_method=self._start_method,
            policy=policy,
            chaos=self._chaos,
        )
        self.jobs_used = pool.jobs
        try:
            selector = ShardedSelector(pool)
            engine = ShardedUpdateEngine(pool)
            if resilient:
                session, source = self._prepare_resilient(
                    dataset, config, belief, experts, tracker,
                    selector, engine, answer_source,
                )
            else:
                source = (
                    ShardedAnswerSource(pool)
                    if sharded_collection
                    else answer_source
                )
                session = OnlineCheckingSession(
                    belief,
                    experts,
                    tracker,
                    selector=selector,
                    k=config.k,
                    ground_truth=dataset.ground_truth,
                    update_engine=engine,
                )
        except BaseException:
            pool.close()
            raise
        if config.journal_path is not None:
            pool.attach_journal(config.journal_path)
        self._prepared = {
            "pool": pool,
            "session": session,
            "source": source,
            "resilient": resilient,
            "tracker": tracker,
        }
        return self

    def launch(self) -> dict:
        """Hand the prepared campaign parts to an external driver.

        The campaign service steps sessions round-by-round itself, so it
        needs the pool/session/source/tracker rather than a blocking
        :meth:`run`.  The caller takes ownership: it must close the pool
        and the tracker (releasing any orphaned ledger reservation) when
        the campaign ends, however it ends.
        """
        self.prepare()
        prepared, self._prepared = self._prepared, None
        return prepared

    def run(self) -> RunResult:
        """Execute the campaign; returns the serial-identical result."""
        self.prepare()
        prepared, self._prepared = self._prepared, None
        session, source = prepared["session"], prepared["source"]
        pool = prepared["pool"]
        with pool:
            try:
                if prepared["resilient"]:
                    return session.run(source)
                while (queries := session.next_queries()) is not None:
                    family = source.collect(queries, session.experts)
                    session.submit(family)
                return RunResult(
                    belief=session.belief, history=list(session.history)
                )
            finally:
                # An abort between reserve_pending and the charge must
                # not leave its worst-case round cost held on a shared
                # ledger forever.
                prepared["tracker"].close()
                self.supervisor_stats = pool.supervisor_stats()
                self.supervisor_incidents = list(pool.supervisor_incidents)

    def _prepare_resilient(
        self,
        dataset,
        config,
        belief,
        experts,
        tracker,
        selector,
        engine,
        answer_source,
    ):
        """The resilient branch, mirroring ``run_hc_session`` verbatim
        (fault wrapping, gold probes, reserves) plus the engine seams
        and the journal's engine record."""
        if config.faults is not None:
            answer_source = FaultyExpertPanel(answer_source, config.faults)
        gold_facts = None
        if config.trust_policy is not None:
            gold_facts = select_gold_probes(
                dataset.ground_truth,
                fraction=config.gold_fraction,
                seed=config.trust_policy.seed,
            )
        reserve = (
            Crowd.from_accuracies(config.reserve_accuracies, prefix="r")
            if config.reserve_accuracies
            else None
        )
        session = ResilientCheckingSession(
            belief,
            experts,
            tracker,
            selector=selector,
            k=config.k,
            ground_truth=dataset.ground_truth,
            retry_policy=config.retry_policy,
            reserve_experts=reserve,
            journal_path=config.journal_path,
            trust_policy=config.trust_policy,
            gold_facts=gold_facts,
            seed=config.seed,
            update_engine=engine,
            journal_metadata=(
                [*self._extra_journal_records, self._engine_record()]
                if config.journal_path is not None
                else None
            ),
        )
        return session, answer_source

    def _engine_record(self) -> dict:
        record = {
            "kind": "engine",
            "jobs": int(self.jobs_used or self._jobs),
            "start_method": self._start_method,
        }
        policy = self.policy_used
        if policy is not None:
            record["supervision"] = {
                "deadline": policy.deadline,
                "max_restarts": policy.max_restarts,
                "failover": policy.failover,
            }
        return record


def run_parallel_hc_session(
    dataset: CrowdLabelingDataset,
    config: SessionConfig | None = None,
    selector=None,
    aggregator=None,
    answer_source=None,
    *,
    jobs: int = 1,
    inline: bool | None = None,
    ledger: BudgetLedger | None = None,
    policy: SupervisionPolicy | None = None,
    chaos=None,
) -> RunResult:
    """Drop-in :func:`~repro.simulation.session.run_hc_session` with
    sharded execution.

    The positional parameters match ``run_hc_session`` so call sites
    switch by adding ``jobs=N``.  A caller-supplied ``selector`` is
    rejected: selection *is* the sharded engine's job (the per-shard
    CELF greedy), and silently running a different selector serially
    would defeat it.
    """
    if selector is not None:
        raise ValueError(
            "run_parallel_hc_session owns selection (sharded lazy "
            "greedy); drop the selector argument or use run_hc_session"
        )
    runner = ParallelCampaignRunner(
        dataset,
        config,
        jobs=jobs,
        aggregator=aggregator,
        answer_source=answer_source,
        inline=inline,
        ledger=ledger,
        policy=policy,
        chaos=chaos,
    )
    return runner.run()


def resume_parallel_session(
    journal_path: str | Path,
    *,
    jobs: int | None = None,
    inline: bool | None = None,
    ledger: BudgetLedger | None = None,
    retry_policy=None,
    reserve_experts: Crowd | None = None,
    cost_model: CostModel | None = None,
    sleep=None,
    policy: SupervisionPolicy | None = None,
    supervision_overrides: dict | None = None,
    chaos=None,
) -> tuple[ResilientCheckingSession, ShardPool]:
    """Restore a killed parallel campaign from its journal.

    Rebuilds the shard layout from the journal's ``engine`` record
    (overridable with ``jobs`` — the continuation is bit-identical for
    any worker count), seeds every shard with the last checkpoint's
    group states, and resumes the resilient session with the sharded
    seams and a fresh ledger caught up to the checkpoint's spending.
    No new ``engine`` record is appended — resume only ever adds the
    same records a serial resume would.

    Supervision settings are restored from the engine record's
    ``supervision`` entry (overridable per-field with
    ``supervision_overrides`` or wholesale with ``policy``), and the
    failover layout from the last layout-bearing ``shard_incident``
    record — a campaign that degraded some shards resumes with the same
    degraded layout rather than resurrecting workers on hardware that
    just failed.  Passing an explicit ``jobs`` discards the journaled
    layout and starts from a fresh balanced partition (equally correct:
    results are partition-independent).

    Returns ``(session, pool)``; call ``session.run(answer_source)`` to
    continue and close the pool afterwards (it is a context manager).
    """
    # Salvage interior corruption (v8 journals) before reading — the
    # inner session's own resume re-trims to the last checkpoint.
    from ..storage.integrity import recover_journal

    recover_journal(journal_path)
    records = read_journal(journal_path)
    engine_records = [
        record for record in records if record.get("kind") == "engine"
    ]
    checkpoints = [
        record for record in records if record.get("kind") == "checkpoint"
    ]
    if not checkpoints:
        raise SerializationError(
            f"journal {journal_path} has no intact checkpoint"
        )
    header = records[0]
    last = checkpoints[-1]
    if policy is None:
        policy = SupervisionPolicy.from_env()
        if engine_records and "supervision" in engine_records[-1]:
            policy = policy.with_overrides(engine_records[-1]["supervision"])
    policy = policy.with_overrides(supervision_overrides)
    partition = None
    degraded: tuple[bool, ...] = ()
    if jobs is None:
        layout_records = [
            record
            for record in records
            if record.get("kind") == "shard_incident"
            and record.get("partition") is not None
        ]
        if layout_records:
            partition = [
                tuple(int(index) for index in shard)
                for shard in layout_records[-1]["partition"]
            ]
            degraded = tuple(
                bool(flag)
                for flag in layout_records[-1].get("degraded", ())
            )
        jobs = int(engine_records[-1]["jobs"]) if engine_records else 1
    if inline is None:
        inline = jobs == 1 and partition is None
    belief = factored_belief_from_dict(last["session"]["belief"])
    panel = crowd_from_dict(last["panel"])
    pool = ShardPool(
        belief,
        panel,
        jobs,
        inline=inline,
        policy=policy,
        chaos=chaos,
        partition=partition,
        degraded=degraded,
    )
    tracker = LedgerBudget(
        float(header["budget_total"]), ledger=ledger, cost_model=cost_model
    )
    try:
        session = ResilientCheckingSession.resume(
            journal_path,
            selector=ShardedSelector(pool),
            cost_model=cost_model,
            retry_policy=retry_policy,
            reserve_experts=reserve_experts,
            sleep=sleep,
            update_engine=ShardedUpdateEngine(pool),
            budget_tracker=tracker,
        )
    except BaseException:
        pool.close()
        raise
    pool.attach_journal(journal_path)
    return session, pool
