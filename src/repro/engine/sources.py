"""Partition-independent answer sources for sharded collection.

:class:`~repro.simulation.oracle.SimulatedExpertPanel` draws all
answers from one sequential RNG stream, so the answers depend on the
order facts are asked in — collecting a query set shard-by-shard would
change every draw.  :class:`KeyedExpertPanel` removes that coupling:
the answer for ``(worker, fact, ask_index)`` is drawn from its own
``SeedSequence([seed, fact_id, ask_index, worker_digest])`` stream, so
any partition of a query set across shards collects byte-identical
answers.

``latency`` models the human in the loop: ``collect`` sleeps
``latency * len(query_fact_ids)`` before answering, the wall-clock cost
of sequentially waiting on experts.  Sharded collection overlaps these
waits — each shard sleeps only for its chunk of the round's queries,
concurrently — which is where the engine's speedup comes from on
latency-bound campaigns.

:class:`ShardedAnswerSource` is the coordinator-side adapter.  It owns
the *global* per-fact ask counters, splits each round's query set into
balanced contiguous chunks of explicit ``(fact_id, ask_index)`` pairs,
scatters one chunk per shard, and merges the replies back into the
exact family a serial panel would return.  Scattering by balanced
chunk rather than by group ownership matters twice over: the
per-round query load of the owning shards can be skewed (capping the
latency overlap well below ``jobs``), and carrying the ask index in
the command payload makes a re-executed ``collect_scatter`` trivially
byte-identical — a respawned worker needs no replayed counter state to
re-draw the same answers.
"""

from __future__ import annotations

import hashlib
import time
from typing import Mapping, Sequence

import numpy as np

from ..core.answers import AnswerFamily, AnswerSet
from ..core.workers import Crowd, Worker
from ..obs import OBS
from .shards import ShardPool


def stable_worker_digest(worker_id: str) -> int:
    """A 64-bit integer key for a worker id, stable across processes.

    ``hash()`` is salted per interpreter (``PYTHONHASHSEED``), which
    would make spawn-children disagree with the coordinator; sha256 is
    not.
    """
    digest = hashlib.sha256(worker_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class KeyedExpertPanel:
    """Bernoulli answers against ground truth, keyed per (fact, ask,
    worker) so collection order and partitioning cannot change them.

    Parameters
    ----------
    ground_truth:
        ``fact_id -> bool`` true labels.
    seed:
        Campaign-level seed mixed into every answer's key.
    latency:
        Simulated seconds of expert latency *per queried fact* per
        :meth:`collect` call (0 disables sleeping).
    """

    def __init__(
        self,
        ground_truth: Mapping[int, bool],
        seed: int = 0,
        latency: float = 0.0,
    ):
        self._truth = dict(ground_truth)
        self._seed = int(seed)
        self.latency = float(latency)
        self._ask_counts: dict[int, int] = {}
        #: Total answers served (lets tests assert budget accounting).
        self.answers_served = 0

    def _answer(self, worker: Worker, fact_id: int, ask_index: int) -> bool:
        sequence = np.random.SeedSequence(
            [
                self._seed,
                int(fact_id),
                int(ask_index),
                stable_worker_digest(worker.worker_id),
            ]
        )
        correct = (
            np.random.default_rng(sequence).random() < worker.accuracy
        )
        truth = self._truth[fact_id]
        return truth if correct else not truth

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily:
        if self.latency > 0:
            time.sleep(self.latency * len(query_fact_ids))
        ask_index: dict[int, int] = {}
        for fact_id in query_fact_ids:
            ask_index[fact_id] = self._ask_counts.get(fact_id, 0)
            self._ask_counts[fact_id] = ask_index[fact_id] + 1
        answer_sets = []
        for worker in experts:
            answers = {
                fact_id: self._answer(worker, fact_id, ask_index[fact_id])
                for fact_id in query_fact_ids
            }
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
            self.answers_served += len(answers)
        return AnswerFamily(answer_sets=tuple(answer_sets))

    def collect_indexed(
        self,
        indexed_queries: Sequence[tuple[int, int]],
        experts: Crowd,
    ) -> AnswerFamily:
        """Answer explicit ``(fact_id, ask_index)`` pairs.

        Pure with respect to the panel's own counters: the caller (the
        coordinator-side :class:`ShardedAnswerSource`) owns the global
        ask counts, so neither ``_ask_counts`` nor ``answers_served``
        moves here and re-invoking with the same pairs re-draws the
        same answers — which is exactly what makes a re-executed
        ``collect_scatter`` command safe after a worker respawn.
        Latency is still paid per queried fact, as in :meth:`collect`.
        """
        if self.latency > 0:
            time.sleep(self.latency * len(indexed_queries))
        answer_sets = []
        for worker in experts:
            answers = {
                int(fact_id): self._answer(worker, fact_id, ask_index)
                for fact_id, ask_index in indexed_queries
            }
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
        return AnswerFamily(answer_sets=tuple(answer_sets))

    # -- journaling hooks (same contract as SimulatedExpertPanel) ------

    def get_state(self) -> dict:
        """JSON-compatible snapshot; restoring it replays the exact
        same future answer stream."""
        return {
            "ask_counts": {
                str(fact_id): count
                for fact_id, count in self._ask_counts.items()
            },
            "answers_served": self.answers_served,
        }

    def set_state(self, state: dict) -> None:
        self._ask_counts = {
            int(fact_id): int(count)
            for fact_id, count in state.get("ask_counts", {}).items()
        }
        self.answers_served = int(state.get("answers_served", 0))

    @staticmethod
    def advance_state(
        state: dict, asked_fact_ids: Sequence[int], answers_served: int
    ) -> dict:
        """Return ``state`` advanced as one :meth:`collect` call over
        ``asked_fact_ids`` would advance it.

        The shard supervisor keeps a coordinator-side mirror of each
        shard's panel state and advances it with this helper only when
        a ``collect`` reply is *consumed*; a worker rebuilt from the
        mirror then re-draws byte-identical answers for any reply that
        was lost in flight.
        """
        counts = dict(state.get("ask_counts", {}))
        for fact_id in asked_fact_ids:
            key = str(int(fact_id))
            counts[key] = int(counts.get(key, 0)) + 1
        return {
            "ask_counts": counts,
            "answers_served": (
                int(state.get("answers_served", 0)) + int(answers_served)
            ),
        }


class ShardedAnswerSource:
    """Collects a query set via the pool's shard-local panel replicas.

    The coordinator advances the global per-fact ask counters exactly
    as one serial :class:`KeyedExpertPanel` call would, then scatters
    the round's ``(fact_id, ask_index)`` pairs in balanced contiguous
    chunks — one per shard, each shard sleeping only for its chunk,
    concurrently.  Because the keyed draws depend only on
    ``(seed, fact, ask_index, worker)``, any shard can answer any
    fact, so chunking is free to balance the latency instead of
    following group ownership; the merged family is byte-identical to
    the serial panel's by the keying argument in the module docstring.
    """

    def __init__(self, pool: ShardPool):
        self._pool = pool
        self._ask_counts: dict[int, int] = {}
        self.answers_served = 0

    @staticmethod
    def _balanced_chunks(
        pairs: Sequence[tuple[int, int]], num_shards: int
    ) -> list[tuple]:
        """Split ``pairs`` into ``num_shards`` contiguous chunks whose
        sizes differ by at most one (earlier chunks take the extras)."""
        base, extra = divmod(len(pairs), num_shards)
        chunks, start = [], 0
        for position in range(num_shards):
            size = base + (1 if position < extra else 0)
            chunks.append(tuple(pairs[start:start + size]))
            start += size
        return chunks

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily:
        self._pool.ensure_experts(experts)
        # Advance the global counters exactly as the serial panel does
        # (repeats within one round keep the last index, dict-style).
        ask_index: dict[int, int] = {}
        for fact_id in query_fact_ids:
            fact_id = int(fact_id)
            current = self._ask_counts.get(fact_id, 0)
            ask_index[fact_id] = current
            self._ask_counts[fact_id] = current + 1
        pairs = [(fact_id, index) for fact_id, index in ask_index.items()]
        chunks = self._balanced_chunks(pairs, len(self._pool.shards))
        with OBS.tracer.span(
            "collect.scatter", queries=len(pairs), shards=len(chunks)
        ):
            replies = self._pool.supervisor.scatter(
                "collect_scatter", chunks
            )
        if OBS.enabled:
            OBS.registry.counter(
                "repro_collect_queries_total",
                "Queries scattered to shard-local panels",
            ).inc(len(pairs))
            OBS.registry.histogram(
                "repro_collect_chunk_size",
                "Per-shard chunk sizes of scattered collection rounds",
                bounds=tuple(float(2 ** n) for n in range(0, 12)),
            ).observe(max(len(chunk) for chunk in chunks) if chunks else 0)
        by_worker: dict[str, dict[int, bool]] = {}
        for reply in replies:
            for worker_id, answers in reply.items():
                by_worker.setdefault(worker_id, {}).update(answers)
        answer_sets = []
        for worker in experts:
            collected = by_worker.get(worker.worker_id, {})
            answers = {
                fact_id: collected[fact_id] for fact_id in query_fact_ids
            }
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
            self.answers_served += len(answers)
        return AnswerFamily(answer_sets=tuple(answer_sets))
