"""Sharded parallel campaign execution.

The belief state of a campaign factorizes exactly across independent
task groups (paper §II-A), so belief updates and greedy checking-task
selection can run group-parallel without approximation.  This package
partitions a campaign's groups across shard workers (spawn-safe
multiprocessing, or in-process for tests), coordinates each round
through a single coordinator, and charges a global budget ledger with
reservation/refund semantics:

* :mod:`~repro.engine.ledger` — :class:`BudgetLedger` (reserve →
  commit/release accounting that makes double-spending structurally
  impossible) and :class:`LedgerBudget` (a drop-in
  :class:`~repro.core.budget.CheckingBudget` that settles every charge
  against the ledger);
* :mod:`~repro.engine.partition` — deterministic group partitioning;
* :mod:`~repro.engine.shards` — the shard worker state machine,
  process/inline shard transports and :class:`ShardPool`;
* :mod:`~repro.engine.sharded` — :class:`ShardedSelector` (k-way gain
  merge of per-shard CELF selections) and :class:`ShardedUpdateEngine`
  (two-phase stage/commit belief updates);
* :mod:`~repro.engine.sources` — :class:`KeyedExpertPanel`, an answer
  source whose streams are keyed per ``(fact, ask, worker)`` so sharded
  collection is bit-identical to serial collection;
* :mod:`~repro.engine.runner` — :class:`ParallelCampaignRunner` /
  :func:`run_parallel_hc_session`, the
  :func:`~repro.simulation.session.run_hc_session`-compatible entry
  points, plus :func:`resume_parallel_session`;
* :mod:`~repro.engine.supervisor` — :class:`ShardSupervisor`
  (per-command deadlines, worker respawn from coordinator state, group
  failover) with :class:`SupervisionPolicy` / :class:`SupervisorStats`
  / :class:`ShardIncident`;
* :mod:`~repro.engine.chaos` — :class:`ChaosPlan` /
  :class:`ChaosTransport`, process-level fault injection (kill, hang,
  delay, corrupt) for testing the supervision layer.

Everything the coordinator journals goes through the serial code paths,
so a parallel campaign's results, histories and journals are
bit-identical to the serial runtime's — with any worker count, and
(because recovery rebuilds workers from the coordinator's authoritative
state and keyed answers are replay-independent) under worker kills,
hangs and protocol corruption too.
"""

import importlib

# Re-exports resolve lazily (PEP 562): spawned shard workers import
# repro.engine.shards, and an eager package root would make each of
# them pay for runner -> simulation.session -> aggregation -> scipy.
_EXPORTS = {
    "ChaosPlan": "chaos",
    "ChaosTransport": "chaos",
    "BudgetLedger": "ledger",
    "LedgerBudget": "ledger",
    "LedgerDriftError": "ledger",
    "LedgerError": "ledger",
    "partition_groups": "partition",
    "ParallelCampaignRunner": "runner",
    "resume_parallel_session": "runner",
    "run_parallel_hc_session": "runner",
    "ShardedSelector": "sharded",
    "ShardedUpdateEngine": "sharded",
    "merge_shard_selections": "sharded",
    "InlineShard": "shards",
    "ProcessShard": "shards",
    "ShardPool": "shards",
    "KeyedExpertPanel": "sources",
    "ShardedAnswerSource": "sources",
    "stable_worker_digest": "sources",
    "ShardFailureError": "supervisor",
    "ShardIncident": "supervisor",
    "ShardRespawnError": "supervisor",
    "ShardSupervisor": "supervisor",
    "SupervisionPolicy": "supervisor",
    "SupervisorStats": "supervisor",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(
        importlib.import_module(f".{module_name}", __name__), name
    )
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "BudgetLedger",
    "ChaosPlan",
    "ChaosTransport",
    "InlineShard",
    "KeyedExpertPanel",
    "LedgerBudget",
    "LedgerDriftError",
    "LedgerError",
    "ParallelCampaignRunner",
    "ProcessShard",
    "ShardFailureError",
    "ShardIncident",
    "ShardPool",
    "ShardRespawnError",
    "ShardSupervisor",
    "ShardedAnswerSource",
    "ShardedSelector",
    "ShardedUpdateEngine",
    "SupervisionPolicy",
    "SupervisorStats",
    "merge_shard_selections",
    "partition_groups",
    "resume_parallel_session",
    "run_parallel_hc_session",
    "stable_worker_digest",
]
