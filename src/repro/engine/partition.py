"""Deterministic partitioning of a campaign's task groups into shards.

The partition is a pure function of ``(num_groups, num_shards)``: a
balanced contiguous split (first ``num_groups % num_shards`` shards get
one extra group).  Determinism matters twice over — a resumed campaign
must rebuild the exact same shard layout from the journal's engine
record, and the equivalence proof for the gain merge relies on every
group living in exactly one shard.
"""

from __future__ import annotations


def partition_groups(num_groups: int, num_shards: int) -> list[tuple[int, ...]]:
    """Split group indices ``0..num_groups-1`` into ``num_shards`` slices.

    Returns exactly ``num_shards`` tuples covering every group once;
    callers that cannot use empty shards should clamp ``num_shards`` to
    ``num_groups`` first.
    """
    if num_groups < 0:
        raise ValueError("num_groups must be non-negative")
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    base, extra = divmod(num_groups, num_shards)
    shards: list[tuple[int, ...]] = []
    start = 0
    for shard_index in range(num_shards):
        size = base + (1 if shard_index < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return shards
