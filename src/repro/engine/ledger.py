"""The cross-shard budget ledger: reserve → commit/release accounting.

The serial runtimes charge a :class:`~repro.core.budget.CheckingBudget`
*after* answers arrive.  That is sound for one sequential campaign, but
as soon as several rounds (or several campaigns sharing one budget) are
in flight, two rounds can each see enough ``remaining`` budget and then
both charge — a double-spend.  The bandit view of expert labor as a
contended shared resource (Zhang & Sugiyama, 2015) makes the fix
explicit: money is *reserved* when a round is dispatched, *committed*
(at the actual, possibly partial, cost) when its answers are accepted,
and *released* when the round is abandoned.  Trust-layer gold probes
are stripped before the charge, so they never touch the ledger at all.

:class:`BudgetLedger` is the invariant-enforcing book (thread-safe; the
coordinator is the only writer in a parallel campaign, but concurrent
campaigns may share one ledger).  :class:`LedgerBudget` adapts it to
the exact :class:`~repro.core.budget.CheckingBudget` interface the
sessions use — every float operation is delegated to the parent class,
so the ``spent`` trajectory (and therefore every checkpoint and journal
byte) is identical to a plain budget's.
"""

from __future__ import annotations

import threading
from fractions import Fraction

from ..core.budget import CheckingBudget, CostModel
from ..core.workers import Crowd
from ..obs import OBS

#: Tolerance for float accumulation when checking ledger invariants,
#: matching :class:`~repro.core.budget.CheckingBudget`'s slack.
_SLACK = 1e-9

#: The same tolerance as an exact rational, for the internal books.
_SLACK_EXACT = Fraction("1e-9")


def _exact(value: "float | Fraction") -> Fraction:
    """A float amount as the exact rational the caller *meant*.

    ``Fraction(str(x))`` parses the float's shortest round-trip decimal
    repr, so ``14.4`` becomes exactly ``72/5`` rather than the binary
    neighbor ``14.4000000000000003552713678800500929355621337890625``.
    Summing those rationals is associative and drift-free — the
    committed pool of 24 campaigns at 14.4 each is exactly ``345.6``,
    not ``345.59999999999997``.
    """
    if isinstance(value, Fraction):
        return value
    return Fraction(str(float(value)))


class LedgerError(RuntimeError):
    """An operation would violate the ledger's accounting invariants."""


class LedgerDriftError(LedgerError):
    """A strict audit found the books themselves inconsistent.

    Every mutation path guards its own invariant, so drift can only
    mean corrupted state — a bug, or accounting replayed from a damaged
    journal.  ``books`` carries the full offending snapshot (exact
    amounts rendered as floats, plus every open reservation) so crash
    recovery and the soak harness can report *what* drifted, not just
    that something did.
    """

    def __init__(self, message: str, books: dict):
        super().__init__(message)
        self.books = books


class BudgetLedger:
    """Reservation/refund accounting over one shared budget.

    Invariants (enforced, not documented-only):

    * ``committed + outstanding <= total`` at all times;
    * a reservation can be settled exactly once (commit or release);
    * a commit can never exceed its reservation — the unused remainder
      is refunded to the available pool atomically with the commit.

    The books are kept in exact rational arithmetic (see :func:`_exact`)
    so long-running pools never accumulate float drift; the public API
    stays float-in/float-out.
    """

    def __init__(self, total: float):
        if total < 0:
            raise ValueError("ledger total must be non-negative")
        self._total = _exact(total)
        self._committed = Fraction(0)
        self._reservations: dict[int, tuple[Fraction, str]] = {}
        self._next_id = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        return float(self._total)

    @property
    def committed(self) -> float:
        """Budget definitively spent (sum of committed amounts)."""
        with self._lock:
            return float(self._committed)

    @property
    def outstanding(self) -> float:
        """Budget held by open reservations (not yet committed)."""
        with self._lock:
            return float(self._outstanding_locked())

    @property
    def available(self) -> float:
        """Budget no one has claimed: ``total - committed - outstanding``."""
        with self._lock:
            return float(self._available_locked())

    def _outstanding_locked(self) -> Fraction:
        return sum(
            (amount for amount, _ in self._reservations.values()),
            Fraction(0),
        )

    def _available_locked(self) -> Fraction:
        return self._total - self._committed - self._outstanding_locked()

    @property
    def open_reservations(self) -> int:
        with self._lock:
            return len(self._reservations)

    # ------------------------------------------------------------------

    def reserve(self, amount: float, label: str = "") -> int:
        """Claim ``amount`` from the available pool; returns a ticket id.

        Raises :class:`LedgerError` when the pool cannot cover it — the
        caller must not dispatch the round.
        """
        if amount < 0:
            raise ValueError("reservation amount must be non-negative")
        exact = _exact(amount)
        with self._lock:
            if exact > self._available_locked() + _SLACK_EXACT:
                raise LedgerError(
                    f"cannot reserve {float(exact)}: only "
                    f"{float(self._available_locked())} of "
                    f"{float(self._total)} available "
                    f"({len(self._reservations)} reservations open)"
                )
            ticket = self._next_id
            self._next_id += 1
            self._reservations[ticket] = (exact, label)
        self._publish("reserve")
        return ticket

    def commit(self, ticket: int, amount: float) -> None:
        """Settle a reservation at its actual cost, refunding the rest.

        ``amount`` may be anything in ``[0, reserved]`` — partial-family
        acceptance commits only what the received answers cost.
        """
        if amount < 0:
            raise ValueError("commit amount must be non-negative")
        exact = _exact(amount)
        with self._lock:
            if ticket not in self._reservations:
                raise LedgerError(
                    f"reservation {ticket} is unknown or already settled"
                )
            reserved, _label = self._reservations[ticket]
            if exact > reserved + _SLACK_EXACT:
                raise LedgerError(
                    f"commit {float(exact)} exceeds reservation "
                    f"{float(reserved)} (ticket {ticket})"
                )
            del self._reservations[ticket]
            # Clamp to the reservation: the slack only forgives float
            # rounding in the *caller's* arithmetic, it must not let
            # the exact books exceed ``total``.
            self._committed += min(exact, reserved)
        self._publish("commit")

    def release(self, ticket: int) -> None:
        """Refund a reservation in full (the round was abandoned)."""
        with self._lock:
            if ticket not in self._reservations:
                raise LedgerError(
                    f"reservation {ticket} is unknown or already settled"
                )
            del self._reservations[ticket]
        self._publish("release")

    def commit_direct(self, amount: float) -> None:
        """Commit without a reservation (checkpoint-restore catch-up).

        Used when a resumed session re-syncs its pre-crash spending into
        a fresh ledger; still bounded by the available pool.
        """
        if amount < 0:
            raise ValueError("commit amount must be non-negative")
        exact = _exact(amount)
        with self._lock:
            available = self._available_locked()
            if exact > available + _SLACK_EXACT:
                raise LedgerError(
                    f"direct commit {float(exact)} exceeds available "
                    f"{float(available)}"
                )
            self._committed += min(exact, available)
        self._publish("commit_direct")

    def _publish(self, operation: str) -> None:
        """Mirror the books into the registry after a settled mutation.

        Called outside the lock — the gauges are a monitoring view, not
        part of the exact accounting, so a racy read of ``committed``
        between two concurrent settles is harmless.
        """
        if not OBS.enabled:
            return
        OBS.registry.counter(
            "repro_ledger_operations_total",
            "Settled ledger mutations by operation",
            labels=("operation",),
        ).labels(operation=operation).inc()
        OBS.publish_gauges(
            "repro_ledger",
            {
                "committed": self.committed,
                "outstanding": self.outstanding,
                "available": self.available,
                "open_reservations": self.open_reservations,
            },
        )

    def audit(self, strict: bool = False) -> list[dict]:
        """Describe every open reservation (leak hunting).

        A campaign that exits cleanly must leave the ledger with
        ``open_reservations == 0``; anything this returns after a
        completed campaign is a leaked hold on the shared pool.  Each
        entry carries the ticket id, the reserved amount, and the label
        the reserver attached.  Amounts are exact: they are the
        rationals on the books rendered as floats, never re-derived by
        float summation.

        With ``strict=True`` the books themselves are validated —
        non-negative committed pool and reservations, and
        ``committed + outstanding <= total`` (within the float-intent
        slack) — and a violation raises :class:`LedgerDriftError`
        carrying the offending snapshot.  Open reservations are *not* a
        strict failure: recovery and the soak harness audit mid-flight,
        with live campaigns legitimately holding deposits.
        """
        with self._lock:
            entries = [
                {"ticket": ticket, "amount": float(amount), "label": label}
                for ticket, (amount, label) in sorted(
                    self._reservations.items()
                )
            ]
            if not strict:
                return entries
            problems = []
            if self._committed < 0:
                problems.append(
                    f"committed pool is negative ({float(self._committed)})"
                )
            for entry in entries:
                if entry["amount"] < 0:
                    problems.append(
                        f"reservation {entry['ticket']} "
                        f"({entry['label']!r}) holds a negative amount "
                        f"({entry['amount']})"
                    )
            overdraft = (
                self._committed
                + self._outstanding_locked()
                - self._total
            )
            if overdraft > _SLACK_EXACT:
                problems.append(
                    "committed + outstanding exceeds the total pool "
                    f"by {float(overdraft)}"
                )
            if problems:
                books = {
                    "total": float(self._total),
                    "committed": float(self._committed),
                    "outstanding": float(self._outstanding_locked()),
                    "open_reservations": entries,
                }
        if strict and problems:
            raise LedgerDriftError("; ".join(problems), books)
        return entries

    def as_dict(self) -> dict:
        """JSON-compatible snapshot for diagnostics and benchmarks.

        Exact under accumulation: 24 commits of 14.4 report a committed
        pool of exactly ``345.6``.
        """
        with self._lock:
            return {
                "total": float(self._total),
                "committed": float(self._committed),
                "outstanding": float(self._outstanding_locked()),
                "open_reservations": len(self._reservations),
            }

    def __repr__(self) -> str:
        return (
            f"BudgetLedger(total={self.total}, committed={self.committed}, "
            f"open={self.open_reservations})"
        )


class LedgerBudget(CheckingBudget):
    """A :class:`~repro.core.budget.CheckingBudget` settled on a ledger.

    The session-facing arithmetic (``spent``/``remaining``/
    ``affordable_queries``/charges) is inherited unchanged — byte-for-
    byte the same accounting as a plain budget — while every lifecycle
    event is mirrored onto the :class:`BudgetLedger`:

    * :meth:`reserve_pending` (called by
      :meth:`~repro.simulation.online.OnlineCheckingSession.next_queries`
      right after selection) reserves the worst-case round cost;
    * :meth:`charge_round` / :meth:`charge_family` commit the actual
      cost against the open reservation, refunding the remainder;
    * :meth:`release_pending` (on ``abandon_pending``) refunds in full;
    * :meth:`restore_spent` (checkpoint restore) catches the ledger up
      with a direct commit.
    """

    def __init__(
        self,
        total: float,
        ledger: BudgetLedger | None = None,
        cost_model: CostModel | None = None,
    ):
        super().__init__(total, cost_model=cost_model)
        self.ledger = ledger if ledger is not None else BudgetLedger(total)
        self._open_ticket: int | None = None
        self._ledger_committed = 0.0

    # -- reservation lifecycle (discovered via getattr by the session) --

    def reserve_pending(self, num_queries: int, experts: Crowd) -> None:
        """Reserve the worst-case cost of the just-selected round."""
        if self._open_ticket is not None:
            raise LedgerError(
                "a reservation is already open; settle it before "
                "reserving another round"
            )
        cost = self.cost_model.round_cost(num_queries, experts)
        self._open_ticket = self.ledger.reserve(
            cost, label=f"round:{num_queries}q"
        )

    def release_pending(self) -> None:
        """Refund the open reservation (round abandoned)."""
        if self._open_ticket is not None:
            self.ledger.release(self._open_ticket)
            self._open_ticket = None

    # -- charges settle the reservation --------------------------------

    def charge_round(self, num_queries: int, experts: Crowd) -> float:
        before = self.spent
        cost = super().charge_round(num_queries, experts)
        self._settle(self.spent - before)
        return cost

    def charge_family(self, family) -> float:
        before = self.spent
        cost = super().charge_family(family)
        self._settle(self.spent - before)
        return cost

    def restore_spent(self, amount: float) -> None:
        super().restore_spent(amount)
        delta = self.spent - self._ledger_committed
        if delta < -_SLACK:
            raise LedgerError(
                "restore_spent cannot move the ledger backwards "
                f"(committed {self._ledger_committed}, restoring "
                f"{self.spent})"
            )
        if delta > 0:
            self.ledger.commit_direct(delta)
            self._ledger_committed += delta

    def _settle(self, spent_delta: float) -> None:
        if self._open_ticket is not None:
            self.ledger.commit(self._open_ticket, spent_delta)
            self._open_ticket = None
        else:
            # A resumed mid-round session charges a pending set whose
            # reservation died with the crashed process.
            self.ledger.commit_direct(spent_delta)
        self._ledger_committed += spent_delta

    # -- teardown -------------------------------------------------------

    def close(self) -> None:
        """Release any still-open reservation (abort teardown).

        A campaign that dies between ``reserve_pending`` and the charge
        would otherwise leave its worst-case round cost held on the
        shared ledger forever.  Idempotent; an alias of
        :meth:`release_pending` under the teardown name so campaign
        runtimes can close the tracker unconditionally.
        """
        self.release_pending()

    def __enter__(self) -> "LedgerBudget":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
