"""Coordinator-side selector and update engine over a shard pool.

Both classes are *drop-in seams*: :class:`ShardedSelector` implements
the :class:`~repro.core.selection.Selector` protocol and
:class:`ShardedUpdateEngine` the ``update_engine`` hook of
:class:`~repro.simulation.online.OnlineCheckingSession`, so the serial
session/runtime code drives a sharded campaign without knowing it.

Why the merge is exact (not approximate)
----------------------------------------
The greedy gain of adding fact ``f`` to a query set only depends on the
query set restricted to ``f``'s *group* (entropy factorizes across
groups), and every group lives in exactly one shard.  Therefore the
serial greedy's pick sequence, restricted to the facts of one shard, is
a prefix of that shard's local greedy sequence — the presence of other
shards' picks in the query set never changes a gain.  Each shard
returns its non-increasing ``(gain, fact_id)`` sequence, and a k-way
merge by ``(-gain, fact_id)`` (the serial argmax rule, including the
lowest-fact-id tie-break) reproduces the serial picks one-for-one.
Gains are computed by the same kernels on bit-equal inputs, so the
floats — and hence every comparison — are identical to the serial
run's.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.answers import AnswerFamily, PartialAnswerFamily
from ..core.kernel import state_from_wire
from ..core.observations import FactoredBelief
from ..core.workers import Crowd
from ..obs import OBS
from .shards import ShardPool


def merge_shard_selections(
    shard_selections: Sequence[Sequence[tuple[int, float]]],
    k: int,
    gain_tolerance: float = 1e-12,
) -> list[int]:
    """K-way merge of per-shard greedy sequences into the global picks.

    Each input sequence must be non-increasing in gain (which local
    greedy guarantees); the merge repeatedly takes the head with the
    highest gain, breaking ties toward the lowest fact id — exactly the
    serial argmax rule — and stops after ``k`` picks or when no head
    beats ``gain_tolerance``.
    """
    heads = [0] * len(shard_selections)
    picks: list[int] = []
    while len(picks) < k:
        best: tuple[float, int, int] | None = None
        for shard_index, selection in enumerate(shard_selections):
            position = heads[shard_index]
            if position >= len(selection):
                continue
            fact_id, gain = selection[position]
            candidate = (-gain, fact_id, shard_index)
            if best is None or candidate < best:
                best = candidate
        if best is None or -best[0] <= gain_tolerance:
            break
        picks.append(best[1])
        heads[best[2]] += 1
    return picks


class ShardedSelector:
    """Greedy selection fanned out over a :class:`ShardPool`.

    Selections are bit-identical to :class:`LazyGreedySelector` on the
    whole belief (see the module docstring for the argument).  The
    ``belief`` argument of :meth:`select` is the coordinator's mirror;
    the authoritative per-group states live in the shards, which also
    own the gain caches — so :meth:`invalidate_groups` is a no-op here
    (shards invalidate exactly their committed groups).
    """

    name = "Sharded-Lazy"

    def __init__(self, pool: ShardPool, gain_tolerance: float = 1e-12):
        self._pool = pool
        self.gain_tolerance = gain_tolerance

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        self._pool.ensure_experts(experts)
        shard_selections = self._pool.broadcast("select", k)
        return merge_shard_selections(
            shard_selections, k, self.gain_tolerance
        )

    def invalidate_groups(self, group_indices: Iterable[int]) -> None:
        """Shard-local caches are invalidated by the shards on commit."""

    def aggregate_stats(self) -> dict:
        """Summed work counters across all shards (for benchmarks)."""
        totals: dict[str, int] = {}
        for stats in self._pool.stats():
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals


class ShardedUpdateEngine:
    """Two-phase (stage → commit/abort) belief updates across shards.

    Implements the ``update_engine`` seam of
    :class:`~repro.simulation.online.OnlineCheckingSession`: every
    belief update is first *staged* in all shards (pure, on copies);
    only if every shard succeeds are the staged states committed — in
    the shards and, mirrored bit-exactly through pickled posterior
    arrays and
    :meth:`~repro.core.observations.BeliefState.from_normalized`, in the
    coordinator's belief (whose bytes feed checkpoints and journals).
    On an inconsistency the engine aborts every staged shard and
    re-raises the error carrying the smallest serial emission key —
    exactly the error the serial loop would have hit first.
    """

    def __init__(self, pool: ShardPool):
        self._pool = pool

    # ------------------------------------------------------------------

    def _settle(
        self, belief: FactoredBelief, replies: list[tuple]
    ) -> tuple[list[int], list]:
        """Commit everywhere, or abort everywhere and raise serial-first."""
        failures = [reply for reply in replies if reply[0] == "inconsistent"]
        if failures:
            staged_positions = [
                position
                for position, reply in enumerate(replies)
                if reply[0] == "staged"
            ]
            self._pool.multicast(staged_positions, "abort")
            raise min(failures, key=lambda reply: reply[1])[2]
        updated: list[int] = []
        keyed_events: list[tuple] = []
        for reply in replies:
            _status, staged, tempered = reply
            for global_index, payload in staged.items():
                state = state_from_wire(
                    belief[global_index].facts, payload
                )
                belief.replace_group(global_index, state)
                # The pool's mirror must reflect the commit *before* it
                # is broadcast: a worker that dies during the commit is
                # rebuilt from the mirror and skips the command.
                self._pool.mirror_group(global_index, state)
                updated.append(global_index)
            keyed_events.extend(tempered)
        with OBS.phase("commit"):
            commit_replies = self._pool.broadcast("commit")
        if OBS.enabled:
            # Each commit reply piggybacks that worker's metric delta
            # (command counts / busy seconds since the last commit);
            # rebuilt workers replied None for the subsumed commit and
            # are skipped.  No extra round-trip ever happens for this.
            for position, delta in enumerate(commit_replies):
                OBS.consume_worker_delta(str(position), delta)
        keyed_events.sort(key=lambda item: item[0])
        return updated, [event for _key, event in keyed_events]

    # -- the OnlineCheckingSession seams -------------------------------

    def apply_family(
        self, belief: FactoredBelief, family: AnswerFamily
    ) -> list[int]:
        """Full-round Eq. 23 update; returns the updated group indices."""
        replies = self._pool.broadcast("stage_family", family)
        updated, _events = self._settle(belief, replies)
        return updated

    def apply_partial(
        self,
        belief: FactoredBelief,
        family: PartialAnswerFamily,
        *,
        temper: bool,
        round_index: int,
        accuracy_overrides: dict | None = None,
    ) -> tuple[list[int], list]:
        """Partial-family Lemma-3 update; returns ``(updated_groups,
        tempered_events)`` with events in serial emission order."""
        replies = self._pool.broadcast(
            "stage_partial", family, temper, round_index, accuracy_overrides
        )
        return self._settle(belief, replies)
