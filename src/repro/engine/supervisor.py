"""Supervision for shard workers: deadlines, respawn, and failover.

PR 4's :class:`~repro.engine.shards.ShardPool` talks to its workers
over blocking pipe reads: a worker that is SIGKILLed, hangs, or garbles
a reply stalls or aborts the whole campaign.  This module adds the
missing supervision layer.  Every shard command is awaited through a
heartbeat-checked poll loop with a configurable deadline; a worker that
dies, times out, or desynchronizes its reply stream is terminated and
respawned with its :class:`~repro.engine.shards.ShardState` rebuilt
from the coordinator's authoritative belief mirror; and once a shard
exhausts its restart budget its groups *fail over* — first to an
in-coordinator :class:`~repro.engine.shards.InlineShard` (degrading
that slice to serial execution), then, at the next safe point, merged
into a surviving worker.

Why recovery preserves bit-identity
-----------------------------------
The checking loop is stateless per round over independent groups
(paper §III, Alg. 2), and every shard command falls into one of two
classes:

* **Re-executable** (``select``, ``stage_partial``, ``stage_family``,
  ``collect``, ``collect_scatter``, ``sync_groups``,
  ``replace_experts``, ``stats``, ``ping``): pure reads,
  staged-on-copies updates, or idempotent overwrites.  Collection is
  re-executable because answers come from a
  :class:`~repro.engine.sources.KeyedExpertPanel`, whose per
  ``(seed, fact, ask, worker)`` keying makes replies replay-independent.
  ``collect_scatter`` carries its ask indices in the command payload,
  so a re-execution is byte-identical by construction; the legacy
  ``collect`` relies on replica-local counters, which the supervisor
  mirrors coordinator-side (advancing them only when a reply is
  *consumed*) so a rebuilt worker re-draws byte-identical answers.
* **Subsumed by the rebuild** (``commit``, ``abort``): the coordinator
  mirrors staged posteriors into its own belief *before* broadcasting
  ``commit`` (see :meth:`~repro.engine.sharded.ShardedUpdateEngine`),
  so a worker rebuilt from the mirror already holds the post-commit
  (respectively post-abort) state and the command is skipped.

Group migration (restart with the same groups, failover to inline,
rebalance onto a survivor) cannot change results either: selection
merge, staged updates and keyed collection are all partition-
independent, which PR 4's equivalence suite pins for every worker
count.  Supervision therefore turns infrastructure faults into pure
wall-clock cost — the final beliefs, selections, budget trajectory and
journal bytes stay identical to a fault-free serial run.

Every intervention is counted in :class:`SupervisorStats`, recorded as
a :class:`ShardIncident` (also exposed as a
:class:`~repro.core.incidents.FaultEvent` via
:meth:`ShardIncident.as_fault_event`), and — when the campaign
journals — appended as a ``{"kind": "shard_incident"}`` record so a
resumed campaign can replay the same failover layout.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import asdict, dataclass, field, fields, replace

from ..core.incidents import FaultEvent
from ..core.serialization import append_journal_record
from ..obs import OBS

#: Commands safe to re-execute on a rebuilt worker (pure, staged on
#: copies, idempotent, or replay-independent by keyed answers).
REEXECUTABLE_COMMANDS = frozenset(
    {
        "select",
        "stage_partial",
        "stage_family",
        "collect",
        "collect_scatter",
        "sync_groups",
        "replace_experts",
        "stats",
        "ping",
    }
)

#: Commands a rebuilt worker must *skip*: the coordinator's belief
#: mirror is updated before ``commit`` is broadcast (and is untouched
#: by ``abort``), so the rebuild itself already realizes their effect.
REBUILD_SUBSUMES_COMMANDS = frozenset({"commit", "abort"})

#: Transport-level exceptions that mean the worker or its pipe failed
#: (as opposed to an application error raised *inside* the worker,
#: which arrives as a well-formed ``("error", exc)`` reply).
TRANSPORT_ERRORS = (EOFError, OSError, pickle.UnpicklingError)


class ShardFailureError(RuntimeError):
    """A shard exhausted its restart budget with failover disabled."""


class ShardRespawnError(RuntimeError):
    """A replacement worker failed to come up within its deadline."""


class ProtocolFailure(RuntimeError):
    """A reply arrived garbled (wrong shape or undecodable payload)."""


_NO_REPLY = object()


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the shard supervision loop.

    Parameters
    ----------
    deadline:
        Seconds a shard may take to answer one command before it is
        declared hung, killed and respawned.  ``None`` disables the
        deadline (death is still detected via liveness checks).
    poll_interval:
        Granularity of the heartbeat poll loop; replies wake the
        coordinator immediately, so this only bounds how often
        liveness/deadline are re-checked.
    startup_deadline:
        Seconds a *respawned* worker may take to finish its startup
        handshake (process spawn + imports are much slower than a
        command, so this is separate from ``deadline``).
    max_restarts:
        In-place respawns granted per shard before its groups fail
        over.  ``0`` fails over on the first incident.
    failover:
        When a shard's restart budget is exhausted: ``True`` degrades
        its groups to an in-coordinator
        :class:`~repro.engine.shards.InlineShard` (later merged into a
        surviving worker at a safe point); ``False`` raises
        :class:`ShardFailureError`, aborting the campaign.
    """

    deadline: float | None = 60.0
    poll_interval: float = 0.05
    startup_deadline: float | None = 60.0
    max_restarts: int = 2
    failover: bool = True

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")

    @classmethod
    def from_env(cls, environ=None) -> "SupervisionPolicy":
        """Defaults overridable via ``REPRO_SHARD_DEADLINE``,
        ``REPRO_MAX_SHARD_RESTARTS`` and ``REPRO_SHARD_FAILOVER`` —
        the hook the CI chaos matrix and ``reproduce`` flags use to
        reach every pool in a process tree (spawned experiment workers
        inherit the environment)."""
        env = os.environ if environ is None else environ
        kwargs: dict = {}
        deadline = env.get("REPRO_SHARD_DEADLINE")
        if deadline:
            value = float(deadline)
            kwargs["deadline"] = value if value > 0 else None
        restarts = env.get("REPRO_MAX_SHARD_RESTARTS")
        if restarts:
            kwargs["max_restarts"] = int(restarts)
        failover = env.get("REPRO_SHARD_FAILOVER")
        if failover:
            kwargs["failover"] = failover.strip().lower() not in {
                "0", "false", "no", "off",
            }
        return cls(**kwargs)

    def with_overrides(self, overrides: dict | None) -> "SupervisionPolicy":
        """Copy with non-``None`` entries of ``overrides`` applied
        (unknown keys rejected)."""
        if not overrides:
            return self
        known = {spec.name for spec in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(f"unknown supervision overrides {sorted(unknown)}")
        return replace(
            self,
            **{k: v for k, v in overrides.items() if v is not None},
        )


@dataclass
class SupervisorStats:
    """Counters of every supervision intervention (all start at 0)."""

    deadline_hits: int = 0
    deaths: int = 0
    protocol_errors: int = 0
    restarts: int = 0
    failovers: int = 0
    rebalances: int = 0
    reexecuted_commands: int = 0
    skipped_commands: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    @property
    def interventions(self) -> int:
        return self.restarts + self.failovers + self.rebalances


@dataclass(frozen=True)
class ShardIncident:
    """One supervision event: what failed (or was repaired), where.

    ``kind`` is one of ``deadline`` / ``death`` / ``protocol`` (the
    observed fault) or ``restart`` / ``failover`` / ``rebalance`` (the
    repair).  Layout-bearing incidents (``failover``, ``rebalance``)
    carry the pool's post-repair ``partition`` and per-slice
    ``degraded`` flags so a resumed campaign can rebuild the same
    layout.
    """

    kind: str
    shard_id: int
    command: str
    restarts: int
    group_indices: tuple[int, ...] = ()
    detail: str = ""
    partition: tuple[tuple[int, ...], ...] | None = None
    degraded: tuple[bool, ...] | None = None

    def to_record(self) -> dict:
        """The ``{"kind": "shard_incident"}`` journal record."""
        record = {
            "kind": "shard_incident",
            "incident": self.kind,
            "shard": self.shard_id,
            "command": self.command,
            "restarts": self.restarts,
            "groups": list(self.group_indices),
            "detail": self.detail,
        }
        if self.partition is not None:
            record["partition"] = [list(shard) for shard in self.partition]
            record["degraded"] = list(self.degraded or ())
        return record

    @classmethod
    def from_record(cls, record: dict) -> "ShardIncident":
        partition = record.get("partition")
        return cls(
            kind=str(record.get("incident", "")),
            shard_id=int(record.get("shard", -1)),
            command=str(record.get("command", "")),
            restarts=int(record.get("restarts", 0)),
            group_indices=tuple(record.get("groups", ())),
            detail=str(record.get("detail", "")),
            partition=(
                tuple(tuple(shard) for shard in partition)
                if partition is not None
                else None
            ),
            degraded=(
                tuple(bool(flag) for flag in record.get("degraded", ()))
                if partition is not None
                else None
            ),
        )

    def as_fault_event(self) -> FaultEvent:
        """The incident as a ``shard_*``-kind fault event (uniform
        display next to crowd-level incidents)."""
        return FaultEvent(
            kind=f"shard_{self.kind}",
            fact_ids=(),
            detail=(
                f"shard {self.shard_id} [{self.command}] "
                f"groups {list(self.group_indices)}: {self.detail}"
            ),
        )


class ShardSupervisor:
    """Deadline-checked dispatch with respawn and failover.

    The pool delegates every coordinator→shard interaction here.  The
    supervisor submits commands, awaits replies through a poll loop,
    classifies failures (deadline, death, garbled protocol), and
    repairs the pool in place: respawn within the restart budget,
    degrade to inline beyond it, and — only at a ``select`` dispatch,
    when nothing is staged or in flight anywhere — merge degraded
    slices back onto a surviving worker.

    The pool owns the structure (transports, partition, degraded
    flags, the authoritative belief mirror and the answer-source state
    mirror); the supervisor owns the policy, the failure handling, the
    counters and the incident log.
    """

    def __init__(self, pool, policy: SupervisionPolicy):
        self._pool = pool
        self.policy = policy
        self.stats = SupervisorStats()
        self.incidents: list[ShardIncident] = []
        self._restarts: dict[int, int] = {}
        self._journal_path = None
        self._on_incident = None

    # -- wiring --------------------------------------------------------

    def attach_journal(self, path) -> None:
        """Journal every incident as a ``shard_incident`` record."""
        self._journal_path = path

    def set_incident_callback(self, callback) -> None:
        self._on_incident = callback

    # -- dispatch ------------------------------------------------------

    def broadcast(self, command: str, *payload) -> list:
        if command == "select":
            # The only safe rebalance point: a round starts here, so no
            # shard holds staged state and no command is in flight —
            # respawning a merge target cannot lose anything.
            self._rebalance()
        positions = range(len(self._pool.shards))
        return self._dispatch([(p, command, payload) for p in positions])

    def multicast(self, positions, command: str, *payload) -> list:
        return self._dispatch([(p, command, payload) for p in positions])

    def scatter(self, command: str, payloads) -> list:
        """One distinct single-argument payload per shard."""
        return self._dispatch(
            [(p, command, (payloads[p],)) for p in range(len(payloads))]
        )

    def _dispatch(self, plan) -> list:
        if not OBS.enabled or not plan:
            return self._dispatch_plan(plan)
        # One span per fan-out (not per shard): the interesting number
        # is how long the coordinator blocked on the slowest worker.
        command = plan[0][1]
        with OBS.tracer.span(
            "shard.dispatch", command=command, fanout=len(plan)
        ):
            started = time.perf_counter()
            replies = self._dispatch_plan(plan)
        OBS.registry.counter(
            "repro_shard_dispatch_total",
            "Coordinator-side shard command fan-outs",
            labels=("command",),
        ).labels(command=command).inc()
        OBS.registry.histogram(
            "repro_shard_dispatch_seconds",
            "Coordinator wall-clock per shard command fan-out",
            labels=("command",),
        ).labels(command=command).observe(
            time.perf_counter() - started
        )
        return replies

    def _dispatch_plan(self, plan) -> list:
        resolved: dict[int, object] = {}
        for position, command, payload in plan:
            self._submit(position, command, payload, resolved)
        replies = []
        for position, command, payload in plan:
            if position in resolved:
                replies.append(resolved.pop(position))
            else:
                replies.append(self._await(position, command, payload))
        return replies

    def _submit(self, position, command, payload, resolved) -> None:
        while True:
            try:
                self._pool.shards[position].submit(command, *payload)
                return
            except TRANSPORT_ERRORS as error:
                self._handle_failure(
                    position, command, "death", f"submit failed: {error!r}"
                )
                if command in REBUILD_SUBSUMES_COMMANDS:
                    self.stats.skipped_commands += 1
                    resolved[position] = None
                    return

    def _await(self, position, command, payload):
        policy = self.policy
        deadline = (
            None
            if policy.deadline is None
            else time.monotonic() + policy.deadline
        )
        while True:
            shard = self._pool.shards[position]
            reply = _NO_REPLY
            failure = None
            # Event-driven wait: wake on reply arrival or worker death
            # (multiprocessing.connection.wait over pipe + sentinel in
            # ProcessShard.wait_reply) instead of sleeping fixed poll
            # ticks.  With a deadline the wait is bounded by it; without
            # one, poll_interval caps each wait so liveness keeps being
            # re-checked.  Transports that must sleep-poll (a chaos
            # "hang" has no event) use poll_interval as their tick.
            if deadline is None:
                timeout = policy.poll_interval
            else:
                timeout = max(0.0, deadline - time.monotonic())
            try:
                if self._wait_for_reply(shard, timeout):
                    reply = shard.take_reply()
                elif not shard.is_alive():
                    # A reply may have raced in between the wait timing
                    # out and the liveness check; drain it first.
                    if shard.poll(0.0):
                        reply = shard.take_reply()
                    else:
                        failure = ("death", "worker died mid-command")
                elif (
                    deadline is not None and time.monotonic() >= deadline
                ):
                    failure = (
                        "deadline",
                        f"no reply within {policy.deadline}s",
                    )
            except TRANSPORT_ERRORS as error:
                # A pipe EOF/reset means the worker closed its end —
                # it is dead or dying even if the OS hasn't reaped it
                # yet; only an undecodable payload is a protocol fault.
                kind = (
                    "protocol"
                    if isinstance(error, pickle.UnpicklingError)
                    else "death"
                )
                failure = (kind, repr(error))
            if reply is not _NO_REPLY:
                try:
                    return self._consume(position, command, payload, reply)
                except ProtocolFailure as error:
                    failure = ("protocol", str(error))
            if failure is None:
                continue
            self._handle_failure(position, command, *failure)
            if command in REBUILD_SUBSUMES_COMMANDS:
                self.stats.skipped_commands += 1
                return None
            self._resubmit(position, command, payload)
            self.stats.reexecuted_commands += 1
            deadline = (
                None
                if policy.deadline is None
                else time.monotonic() + policy.deadline
            )

    def _wait_for_reply(self, shard, timeout: float) -> bool:
        """Wait up to ``timeout`` for a readable reply on one shard.

        Prefers the transport's event-driven ``wait_reply`` (pipe +
        sentinel); falls back to a plain blocking ``poll`` for
        transports that predate it.
        """
        waiter = getattr(shard, "wait_reply", None)
        if callable(waiter):
            return waiter(timeout, self.policy.poll_interval)
        return shard.poll(timeout)

    def _resubmit(self, position, command, payload) -> None:
        while True:
            try:
                self._pool.shards[position].submit(command, *payload)
                return
            except TRANSPORT_ERRORS as error:
                self._handle_failure(
                    position, command, "death", f"submit failed: {error!r}"
                )

    def _consume(self, position, command, payload, reply):
        """Validate a raw protocol reply; raise the worker's own
        exception for well-formed error replies, :class:`ProtocolFailure`
        for garbled ones."""
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or reply[0] not in ("ok", "error")
        ):
            raise ProtocolFailure(f"garbled reply {reply!r}")
        status, value = reply
        if status == "error":
            if isinstance(value, BaseException):
                raise value
            raise ProtocolFailure(
                f"error reply without an exception: {value!r}"
            )
        if command == "collect":
            # Advance the coordinator-side answer-source mirror only on
            # *consumed* replies: a lost reply is re-collected from the
            # pre-advance state, reproducing byte-identical answers.
            self._pool.advance_source_mirror(position, payload[0], value)
        return value

    # -- failure handling ----------------------------------------------

    def _handle_failure(self, position, command, kind, detail) -> None:
        pool = self._pool
        shard_id = pool.shard_ids[position]
        groups = tuple(pool.partition[position])
        if kind == "deadline":
            self.stats.deadline_hits += 1
        elif kind == "death":
            self.stats.deaths += 1
        else:
            self.stats.protocol_errors += 1
        used = self._restarts.get(shard_id, 0)
        self._note(
            ShardIncident(
                kind=kind,
                shard_id=shard_id,
                command=command,
                restarts=used,
                group_indices=groups,
                detail=detail,
            )
        )
        pool.destroy_shard(position)
        self._restarts[shard_id] = used + 1
        degraded = pool.is_degraded(position)
        if used < self.policy.max_restarts and not degraded:
            try:
                pool.respawn_shard(
                    position, startup_deadline=self.policy.startup_deadline
                )
            except TRANSPORT_ERRORS + (ShardRespawnError,) as error:
                # A failed respawn consumes another restart attempt;
                # the recursion bottoms out in failover (or the error).
                self._handle_failure(
                    position, command, "death", f"respawn failed: {error!r}"
                )
                return
            self.stats.restarts += 1
            self._note(
                ShardIncident(
                    kind="restart",
                    shard_id=shard_id,
                    command=command,
                    restarts=self._restarts[shard_id],
                    group_indices=groups,
                    detail="worker respawned from coordinator state",
                )
            )
            return
        if not self.policy.failover:
            raise ShardFailureError(
                f"shard {shard_id} (groups {list(groups)}) failed "
                f"{kind} on {command!r} after {used} restart(s) and "
                f"failover is disabled"
            )
        pool.respawn_shard(
            position,
            degraded=True,
            startup_deadline=self.policy.startup_deadline,
        )
        if not degraded:
            self.stats.failovers += 1
        layout = pool.layout()
        self._note(
            ShardIncident(
                kind="failover",
                shard_id=shard_id,
                command=command,
                restarts=self._restarts[shard_id],
                group_indices=groups,
                detail=(
                    "restart budget exhausted; groups degraded to an "
                    "in-coordinator InlineShard"
                ),
                partition=layout["partition"],
                degraded=layout["degraded"],
            )
        )

    def _rebalance(self) -> None:
        """Merge degraded slices onto surviving process workers.

        Only called from a ``select`` dispatch (round start): no staged
        state exists anywhere, so respawning the merge target with the
        union of groups — rebuilt from the coordinator mirror — cannot
        lose state.  With no survivors the degraded slices stay inline
        (full serial degradation)."""
        pool = self._pool
        if not self.policy.failover or pool.inline:
            return
        while True:
            degraded = [
                p
                for p in range(len(pool.shards))
                if pool.is_degraded(p)
            ]
            survivors = [
                p
                for p in range(len(pool.shards))
                if not pool.is_degraded(p)
            ]
            if not degraded or not survivors:
                return
            position = degraded[0]
            target = min(
                survivors, key=lambda p: (len(pool.partition[p]), p)
            )
            moved = tuple(pool.partition[position])
            shard_id = pool.shard_ids[position]
            target_id = pool.shard_ids[target]
            pool.merge_shards(
                target,
                position,
                startup_deadline=self.policy.startup_deadline,
            )
            self.stats.rebalances += 1
            layout = pool.layout()
            self._note(
                ShardIncident(
                    kind="rebalance",
                    shard_id=shard_id,
                    command="select",
                    restarts=self._restarts.get(shard_id, 0),
                    group_indices=moved,
                    detail=(
                        f"degraded groups {list(moved)} merged into "
                        f"surviving shard {target_id}"
                    ),
                    partition=layout["partition"],
                    degraded=layout["degraded"],
                )
            )

    # -- incident log --------------------------------------------------

    def _note(self, incident: ShardIncident) -> None:
        self.incidents.append(incident)
        if OBS.enabled:
            OBS.registry.counter(
                "repro_shard_incidents_total",
                "Supervision incidents by kind",
                labels=("kind",),
            ).labels(kind=incident.kind).inc()
        if self._journal_path is not None:
            append_journal_record(self._journal_path, incident.to_record())
        if self._on_incident is not None:
            self._on_incident(incident)
