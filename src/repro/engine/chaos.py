"""Process-level fault injection for the shard transport layer.

:mod:`repro.simulation.faults` chaos-tests the *crowd*: workers no-show,
spam, or flip answers.  This module chaos-tests the *engine* one layer
down: :class:`ChaosTransport` wraps a shard transport and can kill the
worker process, swallow a command so the shard appears hung, delay a
reply past its deadline, or corrupt the reply's wire shape — the exact
failure classes the :class:`~repro.engine.supervisor.ShardSupervisor`
must absorb.  :class:`ChaosPlan` decides *when*: either by seeded
per-command draws (``SeedSequence([seed, shard_id, command_index])``,
so a plan is deterministic across runs, processes and respawns) or by
an explicit ``schedule`` of ``(shard_id, command_index) -> action``
entries for surgical tests ("kill shard 1 on its 7th command").

Command indices are counted per *shard id* and persist across respawns
(the replacement transport continues the victim's count), so "kill on
command 7" cannot re-trigger forever.  Degraded (failed-over) inline
replacements are never chaos-wrapped — an injection plan can slow a
campaign down, but never prevent it from terminating.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..simulation.faults import parse_rate_spec

#: Injectable actions, in the order draws are checked.
CHAOS_ACTIONS = ("kill", "hang", "delay", "corrupt")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded configuration of transport failure injection.

    Parameters
    ----------
    kill, hang, delay, corrupt:
        Per-command probabilities (mutually exclusive per draw, checked
        in that order) that the command's transport is killed, the
        command is swallowed (the shard looks hung), the reply is held
        back for ``delay_duration`` seconds, or the reply's wire shape
        is garbled.
    delay_duration:
        Seconds a delayed reply is held back.
    seed:
        Seed of the per-``(shard, command)`` draw streams.
    schedule:
        Explicit ``{(shard_id, command_index): action}`` overrides;
        scheduled entries fire regardless of the rates, which lets
        tests place a single fault surgically.
    """

    kill: float = 0.0
    hang: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    delay_duration: float = 0.1
    seed: int = 0
    schedule: Mapping[tuple[int, int], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = 0.0
        for name in CHAOS_ACTIONS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} rate must lie in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                "kill + hang + delay + corrupt must not exceed 1 "
                "(they are mutually exclusive per-command actions)"
            )
        if self.delay_duration < 0:
            raise ValueError("delay_duration must be >= 0")
        schedule = {}
        for key, action in dict(self.schedule).items():
            shard_id, command_index = key
            if action not in CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown chaos action {action!r}; expected one of "
                    f"{list(CHAOS_ACTIONS)}"
                )
            schedule[(int(shard_id), int(command_index))] = action
        object.__setattr__(self, "schedule", schedule)

    @property
    def enabled(self) -> bool:
        return bool(self.schedule) or any(
            getattr(self, name) > 0.0 for name in CHAOS_ACTIONS
        )

    def action_for(self, shard_id: int, command_index: int) -> str | None:
        """The action to inject for one command, or ``None``.

        Deterministic: the draw comes from its own
        ``SeedSequence([seed, shard_id, command_index])`` stream, so
        the same plan injects the same faults no matter how commands
        interleave across shards or how often workers are respawned.
        """
        scheduled = self.schedule.get((shard_id, command_index))
        if scheduled is not None:
            return scheduled
        if not any(getattr(self, name) > 0.0 for name in CHAOS_ACTIONS):
            return None
        draw = np.random.default_rng(
            np.random.SeedSequence(
                [int(self.seed), int(shard_id), int(command_index)]
            )
        ).random()
        threshold = 0.0
        for name in CHAOS_ACTIONS:
            threshold += getattr(self, name)
            if draw < threshold:
                return name
        return None

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosPlan":
        """Build a plan from a ``name=rate,...`` CLI/env spec.

        Example: ``"kill=0.05,hang=0.02,delay_duration=0.5"``.
        """
        rates = parse_rate_spec(
            spec, CHAOS_ACTIONS + ("delay_duration",)
        )
        return cls(seed=seed, **rates)

    @classmethod
    def from_env(cls, environ=None) -> "ChaosPlan | None":
        """Plan from ``REPRO_CHAOS`` (+ ``REPRO_CHAOS_SEED``), or
        ``None`` when unset — the hook the CI ``engine-chaos`` matrix
        uses to inject faults under the whole test suite without
        touching any call site."""
        env = os.environ if environ is None else environ
        spec = env.get("REPRO_CHAOS")
        if not spec:
            return None
        plan = cls.parse(spec, seed=int(env.get("REPRO_CHAOS_SEED", "0")))
        return plan if plan.enabled else None


class ChaosTransport:
    """Wrap a shard transport; inject faults per the plan.

    Injection happens coordinator-side, at submit/poll/reply time:

    * ``kill`` — the inner transport's worker is killed for real
      (``chaos_kill()``: SIGKILL for a process shard, a dead-flag for
      an inline one), *after* the command is sent; the supervisor sees
      a genuine mid-command death.
    * ``hang`` — the command is swallowed: ``poll`` honours its timeout
      and reports nothing, ``is_alive`` stays true; only the deadline
      can unstick the coordinator.
    * ``delay`` — the command goes through, but ``poll`` reports no
      reply until ``delay_duration`` has elapsed.
    * ``corrupt`` — the command goes through; the reply's wire tuple is
      replaced with a garbled payload, exercising the protocol-failure
      path.

    The wrapper is transparent when no action fires, and the supervisor
    replaces it (not the inner transport) on respawn, feeding
    ``command_offset`` so the shard's command count survives.
    """

    def __init__(self, inner, plan: ChaosPlan, shard_id: int,
                 command_offset: int = 0):
        self._inner = inner
        self._plan = plan
        self.shard_id = int(shard_id)
        self.commands_seen = int(command_offset)
        self._action: str | None = None
        self._delay_until = 0.0

    @property
    def inner(self):
        return self._inner

    # -- protocol pass-through ----------------------------------------

    def wait_ready(self) -> None:
        self._inner.wait_ready()

    def ensure_ready(self, timeout=None) -> None:
        self._inner.ensure_ready(timeout)

    def submit(self, command: str, *payload) -> None:
        action = self._plan.action_for(self.shard_id, self.commands_seen)
        self.commands_seen += 1
        self._action = action
        if action == "hang":
            # Swallow the command entirely; the shard never sees it.
            return
        self._inner.submit(command, *payload)
        if action == "kill":
            self._inner.chaos_kill()
        elif action == "delay":
            self._delay_until = (
                time.monotonic() + self._plan.delay_duration
            )

    def poll(self, timeout: float) -> bool:
        if self._action == "hang":
            if timeout > 0:
                time.sleep(timeout)
            return False
        if self._action == "delay":
            remaining = self._delay_until - time.monotonic()
            if remaining > 0:
                time.sleep(min(timeout, remaining))
                if self._delay_until > time.monotonic():
                    return False
        return self._inner.poll(timeout)

    def wait_reply(self, timeout: float, tick: float | None = None) -> bool:
        """Event-driven wait with the injected fault honoured.

        A hung command has no event to wait on, so the wait degrades to
        a sleep capped at ``tick`` (the supervisor's poll interval) —
        liveness and deadline are re-checked at that granularity, same
        as the pre-wait poll loop.  A delayed reply sleeps out the
        remaining hold-back, then waits on the real transport for
        whatever timeout is left.
        """
        if self._action == "hang":
            wait_for = timeout if tick is None else min(timeout, tick)
            if wait_for > 0:
                time.sleep(wait_for)
            return False
        if self._action == "delay":
            remaining = self._delay_until - time.monotonic()
            if remaining > 0:
                wait_for = min(timeout, remaining)
                if wait_for > 0:
                    time.sleep(wait_for)
                if self._delay_until > time.monotonic():
                    return False
                timeout -= wait_for
        return self._inner.wait_reply(timeout, tick)

    def take_reply(self):
        reply = self._inner.take_reply()
        if self._action == "corrupt":
            self._action = None
            return ("garbled", repr(reply)[:64], None)
        self._action = None
        return reply

    def is_alive(self) -> bool:
        if self._action == "hang":
            return True
        return self._inner.is_alive()

    def chaos_kill(self) -> None:
        self._inner.chaos_kill()

    def result(self):
        return self._inner.result()

    def call(self, command: str, *payload):
        self.submit(command, *payload)
        return self.result()

    def destroy(self) -> None:
        self._inner.destroy()

    def close(self) -> None:
        self._inner.close()
