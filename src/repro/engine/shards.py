"""Shard workers: the per-shard slice of a campaign, plus transports.

A shard owns a contiguous slice of the campaign's task groups.  Because
groups are independent, the shard can hold its own
:class:`~repro.core.observations.FactoredBelief` over just those
groups, run the CELF lazy-greedy selector with a *shard-local* gain
cache, and apply Bayesian updates for its facts — all without ever
seeing another shard's state.  The coordinator talks to shards through
a tiny command protocol:

``select``
    Run the shard-local greedy for up to ``k`` picks; reply with the
    non-increasing ``(fact_id, gain)`` sequence.
``stage_partial`` / ``stage_family``
    Phase one of a belief update: compute the posterior states of the
    shard's touched groups on copies; reply with their probability
    arrays (bit-exact through pickling) without committing.
``commit`` / ``abort``
    Phase two: atomically adopt (or drop) the staged states and
    invalidate exactly the updated groups' selector caches.
``replace_experts``, ``sync_groups``, ``collect``, ``stats``, ``close``
    Panel swaps, resume re-sync, sharded answer collection (benchmark
    mode), work counters, shutdown.

Two transports implement the protocol: :class:`InlineShard` executes
commands in the calling process (fast, used by tests and ``--jobs 1``)
and :class:`ProcessShard` runs the same :class:`ShardState` in a
``multiprocessing`` child using the **spawn** start method (fork-safety:
no inherited locks or RNG state; everything crosses the pipe pickled).
:class:`ShardPool` owns one transport per shard and the broadcast /
gather helpers the coordinator uses.
"""

from __future__ import annotations

import multiprocessing
from typing import Sequence

from ..core.answers import AnswerFamily, PartialAnswerFamily
from ..core.hc import describe_family
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import LazyGreedySelector
from ..core.update import InconsistentEvidenceError, update_with_family
from ..core.workers import Crowd
from ..simulation.online import stage_partial_updates


class ShardProtocolError(RuntimeError):
    """The coordinator and a shard disagreed about the protocol state."""


class ShardState:
    """The shard-local campaign slice and its command handlers.

    Shared verbatim by both transports, so inline and process shards
    cannot drift apart behaviourally.

    Parameters
    ----------
    group_indices:
        The *global* group indices this shard owns (ascending).
    states:
        The owned groups' belief states, aligned with ``group_indices``.
    experts:
        The current checking panel.
    gain_tolerance:
        Forwarded to the shard's
        :class:`~repro.core.selection.LazyGreedySelector`.
    answer_source:
        Optional shard-local answer source for sharded collection; must
        produce partition-independent answers (see
        :class:`~repro.engine.sources.KeyedExpertPanel`).
    """

    def __init__(
        self,
        group_indices: Sequence[int],
        states: Sequence[BeliefState],
        experts: Crowd,
        gain_tolerance: float = 1e-12,
        answer_source=None,
    ):
        if len(group_indices) != len(states) or not group_indices:
            raise ValueError("need one state per owned group (and >= 1)")
        self._global_indices = tuple(int(index) for index in group_indices)
        self._belief = FactoredBelief(states)
        self._fact_ids = frozenset(self._belief.fact_ids)
        self._experts = experts
        self._selector = LazyGreedySelector(gain_tolerance)
        self._staged: dict[int, BeliefState] | None = None
        self._source = answer_source

    # ------------------------------------------------------------------

    def _to_global(self, local_index: int) -> int:
        return self._global_indices[local_index]

    def handle(self, command: str, payload: tuple) -> object:
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise ShardProtocolError(f"unknown shard command {command!r}")
        return handler(*payload)

    # -- selection ------------------------------------------------------

    def _cmd_select(self, k: int) -> list[tuple[int, float]]:
        return self._selector.select_with_gains(
            self._belief, self._experts, k
        )

    def _cmd_replace_experts(self, experts: Crowd) -> None:
        self._experts = experts

    def _cmd_stats(self) -> dict:
        return self._selector.stats.as_dict()

    # -- two-phase belief updates --------------------------------------

    def _cmd_stage_partial(
        self,
        family: PartialAnswerFamily,
        temper: bool,
        round_index: int,
        accuracy_overrides: dict | None,
    ) -> tuple:
        """Stage Lemma-3 updates for the shard's facts.

        Replies ``("staged", {global_group: probabilities}, tempered)``
        or ``("inconsistent", key, error)`` with the error's serial
        emission key, so the coordinator can abort everywhere and raise
        the error the serial loop would have raised first.
        """
        if self._staged is not None:
            raise ShardProtocolError("a staged update is already pending")
        try:
            staged, tempered = stage_partial_updates(
                self._belief,
                family,
                temper=temper,
                round_index=round_index,
                accuracy_overrides=accuracy_overrides,
                fact_filter=self._fact_ids,
            )
        except InconsistentEvidenceError as error:
            key = getattr(error, "stage_key", (0, 0))
            return ("inconsistent", key, error)
        self._staged = staged
        return (
            "staged",
            {
                self._to_global(local): state.probabilities
                for local, state in staged.items()
            },
            tempered,
        )

    def _cmd_stage_family(self, family: AnswerFamily) -> tuple:
        """Stage full-round Eq. 23 updates for the shard's groups.

        Mirrors :meth:`~repro.core.hc.HierarchicalCrowdsourcing._apply_family`
        exactly (same sub-family construction, same error context) for
        the facts this shard owns.
        """
        if self._staged is not None:
            raise ShardProtocolError("a staged update is already pending")
        query_fact_ids = family.query_fact_ids
        groups: dict[int, list[int]] = {}
        first_position: dict[int, int] = {}
        for position, fact_id in enumerate(query_fact_ids):
            if fact_id not in self._fact_ids:
                continue
            local = self._belief.group_index_of(fact_id)
            if local not in groups:
                first_position[local] = position
            groups.setdefault(local, []).append(fact_id)
        staged: dict[int, BeliefState] = {}
        for local, fact_ids in groups.items():
            sub_family = AnswerFamily(
                answer_sets=tuple(
                    type(answer_set)(
                        worker=answer_set.worker,
                        answers={
                            fact_id: answer_set.answer_for(fact_id)
                            for fact_id in fact_ids
                        },
                    )
                    for answer_set in family
                )
            )
            try:
                staged[local] = update_with_family(
                    self._belief[local], sub_family
                )
            except InconsistentEvidenceError as error:
                wrapped = InconsistentEvidenceError(
                    f"{error} (query set {sorted(query_fact_ids)}, "
                    f"group facts {sorted(fact_ids)}, answer family "
                    f"{describe_family(sub_family)})"
                )
                return ("inconsistent", (first_position[local],), wrapped)
        self._staged = staged
        return (
            "staged",
            {
                self._to_global(local): state.probabilities
                for local, state in staged.items()
            },
            [],
        )

    def _cmd_commit(self) -> None:
        if self._staged is None:
            raise ShardProtocolError("no staged update to commit")
        for local, state in self._staged.items():
            self._belief.replace_group(local, state)
        self._selector.invalidate_groups(self._staged.keys())
        self._staged = None

    def _cmd_abort(self) -> None:
        if self._staged is None:
            raise ShardProtocolError("no staged update to abort")
        self._staged = None

    # -- resume / collection -------------------------------------------

    def _cmd_sync_groups(self, groups: dict) -> None:
        """Overwrite owned groups from ``{global_index: probabilities}``
        (journal resume re-syncs shard beliefs to the checkpoint)."""
        local_of = {
            global_index: local
            for local, global_index in enumerate(self._global_indices)
        }
        touched = []
        for global_index, probabilities in groups.items():
            local = local_of[int(global_index)]
            self._belief.replace_group(
                local,
                BeliefState.from_normalized(
                    self._belief[local].facts, probabilities
                ),
            )
            touched.append(local)
        self._selector.invalidate_groups(touched)

    def _cmd_collect(self, query_fact_ids: tuple) -> dict:
        """Collect shard-owned answers; reply ``{worker_id: {fact: bool}}``.

        Only meaningful with a partition-independent answer source.
        """
        if self._source is None:
            raise ShardProtocolError("shard has no answer source")
        owned = [
            fact_id for fact_id in query_fact_ids
            if fact_id in self._fact_ids
        ]
        if not owned:
            return {}
        family = self._source.collect(owned, self._experts)
        return {
            answer_set.worker.worker_id: dict(answer_set.answers)
            for answer_set in family
        }

    def _cmd_ping(self) -> str:
        return "pong"


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------


class InlineShard:
    """Runs the shard state machine in the calling process."""

    def __init__(self, *args, **kwargs):
        self._state = ShardState(*args, **kwargs)

    def submit(self, command: str, *payload) -> None:
        self._reply = self._state.handle(command, payload)

    def result(self):
        return self._reply

    def call(self, command: str, *payload):
        self.submit(command, *payload)
        return self.result()

    def close(self) -> None:
        pass


def _shard_main(connection) -> None:
    """Child-process entry point: build the state, serve commands.

    Module-level so the spawn start method can pickle it; the first
    message carries the constructor payload, every later message is
    ``(command, payload)`` answered with ``("ok", result)`` or
    ``("error", exception)``.
    """
    try:
        kind, payload = connection.recv()
        if kind != "init":
            raise ShardProtocolError(f"expected init, got {kind!r}")
        state = ShardState(*payload)
        connection.send(("ok", None))
        while True:
            message = connection.recv()
            if message is None:
                break
            command, payload = message
            try:
                connection.send(("ok", state.handle(command, payload)))
            except Exception as error:  # surfaced to the coordinator
                connection.send(("error", error))
    finally:
        connection.close()


class ProcessShard:
    """Runs the shard state machine in a spawn-safe child process."""

    def __init__(
        self,
        group_indices,
        states,
        experts,
        gain_tolerance=1e-12,
        answer_source=None,
        start_method: str = "spawn",
    ):
        context = multiprocessing.get_context(start_method)
        self._parent, child = context.Pipe()
        self._process = context.Process(
            target=_shard_main, args=(child,), daemon=True
        )
        self._process.start()
        child.close()
        self._parent.send(
            (
                "init",
                (
                    tuple(group_indices),
                    tuple(states),
                    experts,
                    gain_tolerance,
                    answer_source,
                ),
            )
        )
        # The init handshake is awaited in wait_ready() so a pool can
        # start every child first and let their interpreter/numpy
        # imports overlap across cores.
        self._ready = False
        self._in_flight = False

    def wait_ready(self) -> None:
        if not self._ready:
            self._check(self._parent.recv())
            self._ready = True

    @staticmethod
    def _check(reply):
        status, value = reply
        if status == "error":
            raise value
        return value

    def submit(self, command: str, *payload) -> None:
        self.wait_ready()
        if self._in_flight:
            raise ShardProtocolError("previous command still in flight")
        self._parent.send((command, payload))
        self._in_flight = True

    def result(self):
        if not self._in_flight:
            raise ShardProtocolError("no command in flight")
        self._in_flight = False
        return self._check(self._parent.recv())

    def call(self, command: str, *payload):
        self.submit(command, *payload)
        return self.result()

    def close(self) -> None:
        try:
            self._parent.send(None)
            self._parent.close()
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=10)


class ShardPool:
    """One transport per shard plus the coordinator-side helpers.

    Parameters
    ----------
    belief:
        The campaign's initial factored belief; its groups are
        partitioned with
        :func:`~repro.engine.partition.partition_groups` (``jobs`` is
        clamped to the number of groups, so every shard is non-empty).
    experts:
        The initial checking panel.
    jobs:
        Requested shard count.
    inline:
        ``True`` runs every shard in-process (no multiprocessing);
        bit-identical to process shards by construction, and what
        ``--jobs 1`` and the fast tests use.
    answer_source:
        Optional picklable, partition-independent source replicated
        into every shard for sharded collection.
    gain_tolerance, start_method:
        Forwarded to the shard selector / transport.
    """

    def __init__(
        self,
        belief: FactoredBelief,
        experts: Crowd,
        jobs: int,
        *,
        inline: bool = False,
        answer_source=None,
        gain_tolerance: float = 1e-12,
        start_method: str = "spawn",
    ):
        from .partition import partition_groups

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        num_groups = len(belief)
        self.jobs = max(1, min(jobs, num_groups))
        self.partition = [
            shard
            for shard in partition_groups(num_groups, self.jobs)
            if shard
        ]
        self._experts = experts
        transport = InlineShard if inline else ProcessShard
        kwargs = {} if inline else {"start_method": start_method}
        self.shards = [
            transport(
                indices,
                [belief[index] for index in indices],
                experts,
                gain_tolerance,
                answer_source,
                **kwargs,
            )
            for indices in self.partition
        ]
        for shard in self.shards:
            wait_ready = getattr(shard, "wait_ready", None)
            if callable(wait_ready):
                wait_ready()
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def experts(self) -> Crowd:
        return self._experts

    def broadcast(self, command: str, *payload) -> list:
        """Send one command to every shard; gather replies in shard
        order.  Process shards overlap their work (all commands are
        submitted before any reply is awaited)."""
        for shard in self.shards:
            shard.submit(command, *payload)
        return [shard.result() for shard in self.shards]

    def ensure_experts(self, experts: Crowd) -> None:
        """Propagate a panel change to every shard (idempotent)."""
        if experts is self._experts or experts == self._experts:
            self._experts = experts
            return
        self._experts = experts
        self.broadcast("replace_experts", experts)

    def sync_groups(self, belief: FactoredBelief) -> None:
        """Overwrite every shard's groups from ``belief`` (resume)."""
        for shard, indices in zip(self.shards, self.partition):
            shard.submit(
                "sync_groups",
                {index: belief[index].probabilities for index in indices},
            )
        for shard in self.shards:
            shard.result()

    def stats(self) -> list[dict]:
        return self.broadcast("stats")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
