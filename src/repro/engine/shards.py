"""Shard workers: the per-shard slice of a campaign, plus transports.

A shard owns a contiguous slice of the campaign's task groups.  Because
groups are independent, the shard can hold its own
:class:`~repro.core.observations.FactoredBelief` over just those
groups, run the CELF lazy-greedy selector with a *shard-local* gain
cache, and apply Bayesian updates for its facts — all without ever
seeing another shard's state.  The coordinator talks to shards through
a tiny command protocol:

``select``
    Run the shard-local greedy for up to ``k`` picks; reply with the
    non-increasing ``(fact_id, gain)`` sequence.
``stage_partial`` / ``stage_family``
    Phase one of a belief update: compute the posterior states of the
    shard's touched groups on copies; reply with their probability
    arrays (bit-exact through pickling) without committing.
``commit`` / ``abort``
    Phase two: atomically adopt (or drop) the staged states and
    invalidate exactly the updated groups' selector caches.
``replace_experts``, ``sync_groups``, ``stats``, ``close``
    Panel swaps, resume re-sync, work counters, shutdown.
``collect`` / ``collect_scatter``
    Sharded answer collection.  ``collect`` answers the shard-owned
    subset of a broadcast query set from the replica's own ask
    counters; ``collect_scatter`` answers an explicit chunk of
    ``(fact_id, ask_index)`` pairs statelessly (the coordinator owns
    the counters), which is what
    :class:`~repro.engine.sources.ShardedAnswerSource` scatters for
    balanced latency overlap.

Two transports implement the protocol: :class:`InlineShard` executes
commands in the calling process (fast, used by tests and ``--jobs 1``)
and :class:`ProcessShard` runs the same :class:`ShardState` in a
``multiprocessing`` child using the **spawn** start method (fork-safety:
no inherited locks or RNG state; everything crosses the pipe pickled).
:class:`ShardPool` owns one transport per shard and the broadcast /
gather helpers the coordinator uses.

Both transports expose a *supervisable* surface — non-blocking
``poll(timeout)`` / raw ``take_reply()`` / ``is_alive()`` /
``destroy()`` — in addition to the legacy blocking
``submit``/``result`` pair.  The pool routes every command through a
:class:`~repro.engine.supervisor.ShardSupervisor`, which awaits replies
under a deadline and repairs dead, hung, or desynchronized workers by
respawning them from the pool's authoritative coordinator-side state
(see :meth:`ShardPool.respawn_shard`), failing their groups over to
inline execution once the restart budget runs out.
"""

from __future__ import annotations

import copy
import multiprocessing
import pickle
import time
from multiprocessing import connection as mp_connection
from typing import Sequence

from ..obs import OBS

from ..core.answers import AnswerFamily, PartialAnswerFamily
from ..core.hc import describe_family
from ..core.kernel import state_from_wire, state_wire_payload
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import LazyGreedySelector
from ..core.update import InconsistentEvidenceError, update_with_family
from ..core.workers import Crowd
from ..simulation.online import stage_partial_updates


def _dumps(obj) -> bytes:
    """Wire encoding: always ``HIGHEST_PROTOCOL``.

    ``Connection.send`` pickles with the *default* protocol, which
    frames large float64 arrays less efficiently (no out-of-band buffer
    framing) and re-serializes the object per call; every pipe frame in
    this module goes through here instead, so the protocol is pinned in
    one place and payloads can be pre-serialized once and reused.
    """
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _send(connection, obj) -> int:
    """Send one pre-pickled frame; returns its size in bytes."""
    frame = _dumps(obj)
    connection.send_bytes(frame)
    return len(frame)


def _recv(connection):
    return pickle.loads(connection.recv_bytes())


class ShardProtocolError(RuntimeError):
    """The coordinator and a shard disagreed about the protocol state."""


class ShardState:
    """The shard-local campaign slice and its command handlers.

    Shared verbatim by both transports, so inline and process shards
    cannot drift apart behaviourally.

    Parameters
    ----------
    group_indices:
        The *global* group indices this shard owns (ascending).
    states:
        The owned groups' belief states, aligned with ``group_indices``.
    experts:
        The current checking panel.
    gain_tolerance:
        Forwarded to the shard's
        :class:`~repro.core.selection.LazyGreedySelector`.
    answer_source:
        Optional shard-local answer source for sharded collection; must
        produce partition-independent answers (see
        :class:`~repro.engine.sources.KeyedExpertPanel`).
    """

    def __init__(
        self,
        group_indices: Sequence[int],
        states: Sequence[BeliefState],
        experts: Crowd,
        gain_tolerance: float = 1e-12,
        answer_source=None,
    ):
        if len(group_indices) != len(states) or not group_indices:
            raise ValueError("need one state per owned group (and >= 1)")
        self._global_indices = tuple(int(index) for index in group_indices)
        self._belief = FactoredBelief(states)
        self._fact_ids = frozenset(self._belief.fact_ids)
        self._experts = experts
        self._selector = LazyGreedySelector(gain_tolerance)
        self._staged: dict[int, BeliefState] | None = None
        self._source = answer_source
        # Worker-local observability aggregation: command counts and
        # busy seconds, drained as a delta piggybacked on ``commit``
        # replies (never a dedicated round-trip; see
        # :meth:`take_metrics_delta`).  Always on — two perf_counter
        # reads per command are noise next to any command body, and
        # keeping the protocol identical whether or not the
        # coordinator's observability is enabled is what makes the
        # enabled/disabled byte-identity guarantee trivial.
        self._metrics_commands: dict[str, int] = {}
        self._metrics_busy: dict[str, float] = {}

    # ------------------------------------------------------------------

    def _to_global(self, local_index: int) -> int:
        return self._global_indices[local_index]

    def handle(self, command: str, payload: tuple) -> object:
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise ShardProtocolError(f"unknown shard command {command!r}")
        started = time.perf_counter()
        try:
            return handler(*payload)
        finally:
            elapsed = time.perf_counter() - started
            self._metrics_commands[command] = (
                self._metrics_commands.get(command, 0) + 1
            )
            self._metrics_busy[command] = (
                self._metrics_busy.get(command, 0.0) + elapsed
            )

    def take_metrics_delta(self) -> dict:
        """Drain the worker-local counters accumulated since the last
        drain.  The coordinator folds the delta into its registry with
        a ``shard`` label (:meth:`Observability.consume_worker_delta`);
        the reply payload is a few dozen bytes riding a message that
        was being sent anyway."""
        delta = {
            "commands": self._metrics_commands,
            "busy_seconds": self._metrics_busy,
        }
        self._metrics_commands = {}
        self._metrics_busy = {}
        return delta

    # -- selection ------------------------------------------------------

    def _cmd_select(self, k: int) -> list[tuple[int, float]]:
        return self._selector.select_with_gains(
            self._belief, self._experts, k
        )

    def _cmd_replace_experts(self, experts: Crowd) -> None:
        self._experts = experts

    def _cmd_stats(self) -> dict:
        return self._selector.stats.as_dict()

    # -- two-phase belief updates --------------------------------------

    def _cmd_stage_partial(
        self,
        family: PartialAnswerFamily,
        temper: bool,
        round_index: int,
        accuracy_overrides: dict | None,
    ) -> tuple:
        """Stage Lemma-3 updates for the shard's facts.

        Replies ``("staged", {global_group: probabilities}, tempered)``
        or ``("inconsistent", key, error)`` with the error's serial
        emission key, so the coordinator can abort everywhere and raise
        the error the serial loop would have raised first.
        """
        if self._staged is not None:
            raise ShardProtocolError("a staged update is already pending")
        try:
            staged, tempered = stage_partial_updates(
                self._belief,
                family,
                temper=temper,
                round_index=round_index,
                accuracy_overrides=accuracy_overrides,
                fact_filter=self._fact_ids,
            )
        except InconsistentEvidenceError as error:
            key = getattr(error, "stage_key", (0, 0))
            return ("inconsistent", key, error)
        self._staged = staged
        return (
            "staged",
            {
                self._to_global(local): state_wire_payload(state)
                for local, state in staged.items()
            },
            tempered,
        )

    def _cmd_stage_family(self, family: AnswerFamily) -> tuple:
        """Stage full-round Eq. 23 updates for the shard's groups.

        Mirrors :meth:`~repro.core.hc.HierarchicalCrowdsourcing._apply_family`
        exactly (same sub-family construction, same error context) for
        the facts this shard owns.
        """
        if self._staged is not None:
            raise ShardProtocolError("a staged update is already pending")
        query_fact_ids = family.query_fact_ids
        groups: dict[int, list[int]] = {}
        first_position: dict[int, int] = {}
        for position, fact_id in enumerate(query_fact_ids):
            if fact_id not in self._fact_ids:
                continue
            local = self._belief.group_index_of(fact_id)
            if local not in groups:
                first_position[local] = position
            groups.setdefault(local, []).append(fact_id)
        staged: dict[int, BeliefState] = {}
        for local, fact_ids in groups.items():
            sub_family = AnswerFamily(
                answer_sets=tuple(
                    type(answer_set)(
                        worker=answer_set.worker,
                        answers={
                            fact_id: answer_set.answer_for(fact_id)
                            for fact_id in fact_ids
                        },
                    )
                    for answer_set in family
                )
            )
            try:
                staged[local] = update_with_family(
                    self._belief[local], sub_family
                )
            except InconsistentEvidenceError as error:
                wrapped = InconsistentEvidenceError(
                    f"{error} (query set {sorted(query_fact_ids)}, "
                    f"group facts {sorted(fact_ids)}, answer family "
                    f"{describe_family(sub_family)})"
                )
                return ("inconsistent", (first_position[local],), wrapped)
        self._staged = staged
        return (
            "staged",
            {
                self._to_global(local): state_wire_payload(state)
                for local, state in staged.items()
            },
            [],
        )

    def _cmd_commit(self) -> dict:
        """Commit the staged update; the reply piggybacks the worker's
        metric delta (a rebuilt worker's subsumed commit replies
        ``None`` instead — the coordinator skips non-dict deltas)."""
        if self._staged is None:
            raise ShardProtocolError("no staged update to commit")
        for local, state in self._staged.items():
            self._belief.replace_group(local, state)
        self._selector.invalidate_groups(self._staged.keys())
        self._staged = None
        return self.take_metrics_delta()

    def _cmd_abort(self) -> None:
        if self._staged is None:
            raise ShardProtocolError("no staged update to abort")
        self._staged = None

    # -- resume / collection -------------------------------------------

    def _cmd_sync_groups(self, groups: dict) -> None:
        """Overwrite owned groups from ``{global_index: wire payload}``
        (journal resume re-syncs shard beliefs to the checkpoint)."""
        local_of = {
            global_index: local
            for local, global_index in enumerate(self._global_indices)
        }
        touched = []
        for global_index, payload in groups.items():
            local = local_of[int(global_index)]
            self._belief.replace_group(
                local,
                state_from_wire(self._belief[local].facts, payload),
            )
            touched.append(local)
        self._selector.invalidate_groups(touched)

    def _cmd_collect(self, query_fact_ids: tuple) -> dict:
        """Collect shard-owned answers; reply ``{worker_id: {fact: bool}}``.

        Only meaningful with a partition-independent answer source.
        """
        if self._source is None:
            raise ShardProtocolError("shard has no answer source")
        owned = [
            fact_id for fact_id in query_fact_ids
            if fact_id in self._fact_ids
        ]
        if not owned:
            return {}
        family = self._source.collect(owned, self._experts)
        return {
            answer_set.worker.worker_id: dict(answer_set.answers)
            for answer_set in family
        }

    def _cmd_collect_scatter(self, indexed_queries: tuple) -> dict:
        """Answer an explicit ``(fact_id, ask_index)`` chunk; reply
        ``{worker_id: {fact: bool}}``.

        Stateless on the shard side: the coordinator assigned the ask
        indices, so the chunk may contain *any* fact (not just owned
        ones) and re-executing the command after a respawn re-draws
        byte-identical answers with no replayed counter state.
        """
        if self._source is None:
            raise ShardProtocolError("shard has no answer source")
        if not indexed_queries:
            return {}
        family = self._source.collect_indexed(
            indexed_queries, self._experts
        )
        return {
            answer_set.worker.worker_id: dict(answer_set.answers)
            for answer_set in family
        }

    def _cmd_ping(self) -> str:
        return "pong"


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------


class InlineShard:
    """Runs the shard state machine in the calling process.

    Execution is *deferred*: ``submit`` only records the command and
    ``take_reply`` runs it, returning the same ``("ok", result)`` /
    ``("error", exception)`` wire tuples a process shard sends — so the
    supervisor drives both transports through one code path, and chaos
    tests can exercise the full recovery machinery without spawning
    processes.  ``chaos_kill`` flips a dead-flag that makes the shard
    indistinguishable from a killed worker (``poll`` finds nothing,
    ``is_alive`` is false, pending work is lost).
    """

    def __init__(self, *args, **kwargs):
        self._state = ShardState(*args, **kwargs)
        self._pending: tuple[str, tuple] | None = None
        self._dead = False

    # -- supervisable surface ------------------------------------------

    def wait_ready(self) -> None:
        pass

    def ensure_ready(self, timeout: float | None = None) -> None:
        pass

    def submit(self, command: str, *payload) -> None:
        if self._dead:
            raise BrokenPipeError("inline shard is dead")
        if self._pending is not None:
            raise ShardProtocolError("previous command still in flight")
        self._pending = (command, payload)

    def poll(self, timeout: float = 0.0) -> bool:
        return self._pending is not None and not self._dead

    def wait_reply(
        self, timeout: float, tick: float | None = None
    ) -> bool:
        """Inline replies are ready the moment they are submitted, so
        waiting never blocks (death is reported immediately too)."""
        return self.poll()

    def take_reply(self):
        if self._dead:
            raise EOFError("inline shard is dead")
        if self._pending is None:
            raise ShardProtocolError("no command in flight")
        command, payload = self._pending
        self._pending = None
        try:
            return ("ok", self._state.handle(command, payload))
        except Exception as error:  # surfaced to the coordinator
            return ("error", error)

    def is_alive(self) -> bool:
        return not self._dead

    def chaos_kill(self) -> None:
        self._dead = True
        self._pending = None

    # -- legacy blocking surface ---------------------------------------

    def result(self):
        status, value = self.take_reply()
        if status == "error":
            raise value
        return value

    def call(self, command: str, *payload):
        self.submit(command, *payload)
        return self.result()

    def close(self) -> None:
        pass

    def destroy(self) -> None:
        self._dead = True
        self._pending = None


class SharedCampaignPayload:
    """The pool-wide slice of the shard init payload, serialized once.

    Historically every :class:`ProcessShard` re-pickled the full expert
    panel and answer-source replica at spawn, so startup pipe bytes
    scaled with ``jobs x panel size``.  The pool now pickles the shared
    part exactly once (``HIGHEST_PROTOCOL``) and publishes the bytes
    through a :mod:`multiprocessing.shared_memory` segment that every
    worker maps read-only; each init frame then carries only the tiny
    segment reference plus the shard's own group slice.  Where shared
    memory is unavailable the bytes ride inline in each init frame —
    still serialized once, merely transported per worker.

    The segment lives until :meth:`close` (the pool closes it after the
    shards), so late respawns can still map it; the resource tracker
    reclaims it even if the coordinator is SIGKILLed.
    """

    def __init__(self, experts: Crowd, answer_source=None):
        #: Kept as references so transports can detect when a caller's
        #: current panel/source has drifted from the shared snapshot
        #: (a respawn after a panel swap must override, not reuse).
        self.experts = experts
        self.answer_source = answer_source
        blob = _dumps((experts, answer_source))
        self.size = len(blob)
        self._segment = None
        self._blob: bytes | None = None
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(blob))
            )
            segment.buf[: len(blob)] = blob
            self._segment = segment
        except Exception:
            self._blob = blob

    @property
    def uses_shared_memory(self) -> bool:
        return self._segment is not None

    def ref(self) -> tuple:
        """The per-worker handle: a segment name or the inline bytes."""
        if self._segment is not None:
            return ("shm", self._segment.name, self.size)
        return ("inline", self._blob)

    def close(self) -> None:
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            self._segment = None
        self._blob = None


def _load_shared_payload(ref: tuple):
    """Child-side decode of :meth:`SharedCampaignPayload.ref`."""
    if ref[0] == "inline":
        return pickle.loads(ref[1])
    from multiprocessing import shared_memory

    _kind, name, size = ref
    segment = shared_memory.SharedMemory(name=name)
    try:
        return pickle.loads(bytes(segment.buf[:size]))
    finally:
        segment.close()


def _shard_main(connection) -> None:
    """Child-process entry point: build the state, serve commands.

    Module-level so the spawn start method can pickle it; the first
    frame carries the shared-payload reference plus the shard's own
    slice, every later frame is ``(command, payload)`` answered with
    ``("ok", result)`` or ``("error", exception)``.  All frames cross
    the pipe as ``HIGHEST_PROTOCOL`` pickles via :func:`_send` /
    :func:`_recv`.
    """
    try:
        kind, shared_ref, shard_payload = _recv(connection)
        if kind != "init":
            raise ShardProtocolError(f"expected init, got {kind!r}")
        experts, source = _load_shared_payload(shared_ref)
        if shard_payload.get("experts") is not None:
            experts = shard_payload["experts"]
        if shard_payload.get("override_source"):
            source = shard_payload.get("source")
        state = ShardState(
            shard_payload["indices"],
            shard_payload["states"],
            experts,
            shard_payload["gain_tolerance"],
            source,
        )
        _send(connection, ("ok", None))
        while True:
            message = _recv(connection)
            if message is None:
                break
            command, payload = message
            try:
                _send(connection, ("ok", state.handle(command, payload)))
            except Exception as error:  # surfaced to the coordinator
                _send(connection, ("error", error))
    finally:
        connection.close()


class ProcessShard:
    """Runs the shard state machine in a spawn-safe child process.

    ``shared`` is the pool's :class:`SharedCampaignPayload`; when it is
    omitted (tests building a lone shard) a private one is created and
    owned.  The positional ``experts`` / ``answer_source`` are the
    *current* values: whenever they differ from the shared snapshot
    (panel swap before a respawn, rebuilt source replica) they ride in
    the per-shard init frame as overrides.
    """

    def __init__(
        self,
        group_indices,
        states,
        experts,
        gain_tolerance=1e-12,
        answer_source=None,
        start_method: str = "spawn",
        *,
        shared: SharedCampaignPayload | None = None,
    ):
        self._owned_shared: SharedCampaignPayload | None = None
        if shared is None:
            shared = SharedCampaignPayload(experts, answer_source)
            self._owned_shared = shared
        shard_payload = {
            "indices": tuple(group_indices),
            "states": tuple(states),
            "gain_tolerance": gain_tolerance,
            "experts": None if experts is shared.experts else experts,
            "override_source": answer_source is not shared.answer_source,
            "source": (
                answer_source
                if answer_source is not shared.answer_source
                else None
            ),
        }
        context = multiprocessing.get_context(start_method)
        self._parent, child = context.Pipe()
        self._process = context.Process(
            target=_shard_main, args=(child,), daemon=True
        )
        self._process.start()
        child.close()
        #: Startup / steady-state pipe byte counters (transport tests
        #: assert init bytes no longer scale with the worker count).
        self.init_bytes = _send(
            self._parent, ("init", shared.ref(), shard_payload)
        )
        self.shared_payload_bytes = shared.size
        self.bytes_sent = 0
        self.bytes_received = 0
        # The init handshake is awaited in ensure_ready() so a pool can
        # start every child first and let their interpreter/numpy
        # imports overlap across cores.
        self._ready = False
        self._in_flight = False
        self._destroyed = False

    def wait_ready(self) -> None:
        self.ensure_ready(None)

    def ensure_ready(self, timeout: float | None = None) -> None:
        """Await the init handshake, optionally under a deadline (a
        respawned worker that cannot come up must not hang recovery)."""
        if self._ready:
            return
        if timeout is not None and not self._parent.poll(timeout):
            from .supervisor import ShardRespawnError

            raise ShardRespawnError(
                f"shard worker not ready within {timeout}s"
            )
        self._check(self._recv_frame())
        self._ready = True

    @staticmethod
    def _check(reply):
        status, value = reply
        if status == "error":
            raise value
        return value

    def _recv_frame(self):
        frame = self._parent.recv_bytes()
        self.bytes_received += len(frame)
        return pickle.loads(frame)

    def submit(self, command: str, *payload) -> None:
        self.ensure_ready()
        if self._in_flight:
            raise ShardProtocolError("previous command still in flight")
        self.bytes_sent += _send(self._parent, (command, payload))
        self._in_flight = True

    # -- supervisable surface ------------------------------------------

    def poll(self, timeout: float = 0.0) -> bool:
        return self._parent.poll(timeout)

    def wait_reply(
        self, timeout: float, tick: float | None = None
    ) -> bool:
        """Block until a reply is readable or the worker dies, up to
        ``timeout`` seconds; returns whether a reply is readable.

        Uses :func:`multiprocessing.connection.wait` over the reply
        pipe *and* the process sentinel, so an idle coordinator wakes
        the instant either fires instead of sleeping fixed poll ticks —
        and a worker death interrupts the wait immediately rather than
        being noticed at the next deadline check.  (``tick`` is only
        meaningful for transports that must sleep-poll; a real pipe
        wait needs no granularity.)
        """
        if self._parent.poll(0.0):
            return True
        if timeout <= 0:
            return False
        handles: list = [self._parent]
        try:
            handles.append(self._process.sentinel)
        except ValueError:
            pass  # process already closed; the pipe wait still works
        mp_connection.wait(handles, timeout)
        return self._parent.poll(0.0)

    def take_reply(self):
        self._in_flight = False
        return self._recv_frame()

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def chaos_kill(self) -> None:
        self._process.kill()

    # -- legacy blocking surface ---------------------------------------

    def result(self):
        if not self._in_flight:
            raise ShardProtocolError("no command in flight")
        self._in_flight = False
        return self._check(self._recv_frame())

    def call(self, command: str, *payload):
        self.submit(command, *payload)
        return self.result()

    def close(self) -> None:
        """Graceful shutdown that can never hang or leak.

        The shutdown sentinel may fail (dead child, full pipe) — the
        parent pipe end is closed regardless, and the join escalates
        terminate → kill so a wedged child cannot zombie past the 30s
        worst case.
        """
        if self._destroyed:
            return
        self._destroyed = True
        try:
            _send(self._parent, None)
        except (BrokenPipeError, OSError):
            pass
        finally:
            try:
                self._parent.close()
            except OSError:
                pass
        self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=10)
        try:
            self._process.close()
        except ValueError:
            pass
        if self._owned_shared is not None:
            self._owned_shared.close()
            self._owned_shared = None

    def destroy(self) -> None:
        """Immediate teardown of a failed worker (no sentinel, no
        grace): SIGKILL, reap, close the pipe.  Killing before the pipe
        closes keeps a live-but-hung child from tracebacking into the
        coordinator's stderr mid-recovery.  Idempotent."""
        if self._destroyed:
            return
        self._destroyed = True
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=10)
        try:
            self._parent.close()
        except OSError:
            pass
        try:
            self._process.close()
        except ValueError:
            pass
        if self._owned_shared is not None:
            self._owned_shared.close()
            self._owned_shared = None


class ShardPool:
    """One transport per shard plus the coordinator-side helpers.

    The pool is the authoritative side of every shard's state: it keeps
    a reference to the campaign belief (kept current by the update
    engine's mirror calls and :meth:`sync_groups`) and, for sharded
    collection, a per-shard mirror of the answer-source counters —
    enough to rebuild any worker's :class:`ShardState` from scratch.
    All commands are dispatched through a
    :class:`~repro.engine.supervisor.ShardSupervisor` (deadline, respawn
    and failover; see that module for why recovery preserves
    bit-identity).

    Parameters
    ----------
    belief:
        The campaign's factored belief; its groups are partitioned with
        :func:`~repro.engine.partition.partition_groups` (``jobs`` is
        clamped to the number of groups, so every shard is non-empty).
        The pool keeps the reference as its authoritative mirror for
        worker rebuilds.
    experts:
        The initial checking panel.
    jobs:
        Requested shard count.
    inline:
        ``True`` runs every shard in-process (no multiprocessing);
        bit-identical to process shards by construction, and what
        ``--jobs 1`` and the fast tests use.
    answer_source:
        Optional picklable, partition-independent source replicated
        into every shard for sharded collection.
    gain_tolerance, start_method:
        Forwarded to the shard selector / transport.
    policy:
        :class:`~repro.engine.supervisor.SupervisionPolicy`; defaults to
        :meth:`~repro.engine.supervisor.SupervisionPolicy.from_env`.
    chaos:
        Optional :class:`~repro.engine.chaos.ChaosPlan` injecting
        transport faults (tests / the CI chaos matrix); defaults to
        :meth:`~repro.engine.chaos.ChaosPlan.from_env`.
    partition:
        Optional explicit group layout (list of group-index tuples
        covering every group exactly once), used by resume to restore a
        journaled failover layout; overrides ``jobs``.
    degraded:
        Per-``partition``-slice flags marking slices that already
        failed over to inline execution (resume restore).
    """

    def __init__(
        self,
        belief: FactoredBelief,
        experts: Crowd,
        jobs: int,
        *,
        inline: bool = False,
        answer_source=None,
        gain_tolerance: float = 1e-12,
        start_method: str = "spawn",
        policy=None,
        chaos=None,
        partition: Sequence[Sequence[int]] | None = None,
        degraded: Sequence[bool] = (),
    ):
        from .chaos import ChaosPlan
        from .partition import partition_groups
        from .supervisor import ShardSupervisor, SupervisionPolicy

        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        num_groups = len(belief)
        if partition is not None:
            layout = [
                tuple(int(index) for index in shard)
                for shard in partition
                if shard
            ]
            covered = sorted(
                index for shard in layout for index in shard
            )
            if covered != list(range(num_groups)):
                raise ValueError(
                    "partition must cover every group exactly once"
                )
            self.partition = layout
        else:
            requested = max(1, min(jobs, num_groups))
            self.partition = [
                tuple(shard)
                for shard in partition_groups(num_groups, requested)
                if shard
            ]
        self.jobs = len(self.partition)
        self.inline = bool(inline)
        self._belief = belief
        self._experts = experts
        self._gain_tolerance = gain_tolerance
        self._start_method = start_method
        self._policy = (
            policy if policy is not None else SupervisionPolicy.from_env()
        )
        plan = chaos if chaos is not None else ChaosPlan.from_env()
        self._chaos = plan if plan is not None and plan.enabled else None
        self._answer_source = answer_source
        self._pristine_source = (
            copy.deepcopy(answer_source)
            if answer_source is not None
            else None
        )
        source_state = None
        if answer_source is not None:
            get_state = getattr(answer_source, "get_state", None)
            if callable(get_state):
                source_state = get_state()
        self._initial_source_state = copy.deepcopy(source_state)
        self._source_mirrors = (
            [copy.deepcopy(source_state) for _ in self.partition]
            if source_state is not None
            else None
        )
        self.shard_ids = list(range(len(self.partition)))
        self._degraded: set[int] = set()
        for position, flag in enumerate(degraded):
            if flag:
                self._degraded.add(self.shard_ids[position])
        self._chaos_counts: dict[int, int] = {}
        self._shared_payload: SharedCampaignPayload | None = None
        self.shards = [
            self._build_transport(position, answer_source)
            for position in range(len(self.partition))
        ]
        for shard in self.shards:
            shard.ensure_ready(self._policy.startup_deadline)
        self.supervisor = ShardSupervisor(self, self._policy)
        self._closed = False

    # ------------------------------------------------------------------
    # transport construction / repair
    # ------------------------------------------------------------------

    def _build_transport(self, position: int, source):
        """A transport for ``self.partition[position]`` with states
        rebuilt from the authoritative belief mirror.  Degraded slices
        run inline and are never chaos-wrapped, so an injection plan
        cannot prevent the campaign from terminating."""
        indices = self.partition[position]
        shard_id = self.shard_ids[position]
        degraded = shard_id in self._degraded
        states = [self._belief[index] for index in indices]
        if self.inline or degraded:
            shard = InlineShard(
                indices, states, self._experts,
                self._gain_tolerance, source,
            )
        else:
            if self._shared_payload is None:
                # Pickled once for the whole pool; every worker (initial
                # spawn and later respawns) maps the same bytes instead
                # of re-serializing the panel/source per process.
                self._shared_payload = SharedCampaignPayload(
                    self._experts, self._answer_source
                )
            shard = ProcessShard(
                indices, states, self._experts,
                self._gain_tolerance, source,
                start_method=self._start_method,
                shared=self._shared_payload,
            )
        if self._chaos is not None and not degraded:
            from .chaos import ChaosTransport

            shard = ChaosTransport(
                shard,
                self._chaos,
                shard_id,
                self._chaos_counts.get(shard_id, 0),
            )
        return shard

    def _rebuild_source(self, position: int):
        """A fresh answer-source replica at the position's mirror state
        (a rebuilt worker must re-draw exactly the answers whose replies
        were never consumed)."""
        if self._answer_source is None:
            return None
        source = copy.deepcopy(self._pristine_source)
        if self._source_mirrors is not None:
            set_state = getattr(source, "set_state", None)
            if callable(set_state):
                set_state(copy.deepcopy(self._source_mirrors[position]))
        return source

    def _remember_chaos_count(self, shard) -> None:
        commands_seen = getattr(shard, "commands_seen", None)
        if commands_seen is not None:
            self._chaos_counts[shard.shard_id] = commands_seen

    def destroy_shard(self, position: int) -> None:
        """Immediately tear down one worker (failure path)."""
        shard = self.shards[position]
        self._remember_chaos_count(shard)
        shard.destroy()

    def respawn_shard(
        self,
        position: int,
        *,
        degraded: bool = False,
        startup_deadline: float | None = None,
    ) -> None:
        """Replace a destroyed worker with a fresh one rebuilt from the
        coordinator's authoritative state (belief mirror + answer-source
        mirror).  ``degraded=True`` permanently fails the slice over to
        an unsupervised :class:`InlineShard`."""
        shard_id = self.shard_ids[position]
        if degraded:
            self._degraded.add(shard_id)
        shard = self._build_transport(
            position, self._rebuild_source(position)
        )
        shard.ensure_ready(startup_deadline)
        self.shards[position] = shard

    def merge_shards(
        self,
        target: int,
        source: int,
        *,
        startup_deadline: float | None = None,
    ) -> int:
        """Fold shard ``source``'s groups into shard ``target``
        (rebalance of a degraded slice onto a survivor).  Both workers
        are destroyed and the target respawned over the merged groups;
        only safe when nothing is staged or in flight.  Returns the
        target's position after the removal."""
        if target == source:
            raise ValueError("cannot merge a shard into itself")
        merged_groups = tuple(
            sorted(self.partition[target] + self.partition[source])
        )
        merged_mirror = None
        if self._source_mirrors is not None:
            merged_mirror = self._merge_mirrors(
                self._source_mirrors[target],
                self._source_mirrors[source],
                self._initial_source_state,
            )
        self.destroy_shard(target)
        self.destroy_shard(source)
        removed_id = self.shard_ids[source]
        del self.partition[source]
        del self.shards[source]
        del self.shard_ids[source]
        if self._source_mirrors is not None:
            del self._source_mirrors[source]
        self._degraded.discard(removed_id)
        self._chaos_counts.pop(removed_id, None)
        if source < target:
            target -= 1
        self.partition[target] = merged_groups
        if merged_mirror is not None:
            self._source_mirrors[target] = merged_mirror
        self.jobs = len(self.partition)
        self.respawn_shard(target, startup_deadline=startup_deadline)
        return target

    @staticmethod
    def _merge_mirrors(first: dict, second: dict, initial: dict | None) -> dict:
        """Merge two per-shard answer-source mirrors.

        Each fact is owned by exactly one shard, so only its owner's
        mirror advanced its ask count past the (shared) initial state —
        the per-fact max is the merged count.  ``answers_served``
        started at the initial value in both replicas, so the merged
        total adds the two deltas onto it once.
        """
        counts = {
            key: int(value)
            for key, value in first.get("ask_counts", {}).items()
        }
        for key, value in second.get("ask_counts", {}).items():
            counts[key] = max(counts.get(key, 0), int(value))
        initial_served = int((initial or {}).get("answers_served", 0))
        served = (
            int(first.get("answers_served", 0))
            + int(second.get("answers_served", 0))
            - initial_served
        )
        return {"ask_counts": counts, "answers_served": served}

    # ------------------------------------------------------------------
    # authoritative coordinator-side state
    # ------------------------------------------------------------------

    def mirror_group(self, global_index: int, state: BeliefState) -> None:
        """Record a committed group state in the belief mirror (called
        by the update engine *before* ``commit`` is broadcast, so a
        worker rebuilt during the commit already reflects it)."""
        self._belief.replace_group(global_index, state)

    def _owned_fact_ids(self, position: int) -> set[int]:
        owned: set[int] = set()
        for index in self.partition[position]:
            owned.update(self._belief[index].facts.fact_ids)
        return owned

    def advance_source_mirror(
        self, position: int, query_fact_ids, reply: dict
    ) -> None:
        """Advance the position's answer-source mirror as its consumed
        ``collect`` reply advanced the worker's replica."""
        if self._source_mirrors is None:
            return
        owned = self._owned_fact_ids(position)
        asked = [
            fact_id for fact_id in query_fact_ids if fact_id in owned
        ]
        if not asked:
            return
        from .sources import KeyedExpertPanel

        served = sum(len(answers) for answers in reply.values())
        self._source_mirrors[position] = KeyedExpertPanel.advance_state(
            self._source_mirrors[position], asked, served
        )

    def layout(self) -> dict:
        """The current shard layout, as journaled on failover (resume
        rebuilds the same pool shape from it)."""
        return {
            "partition": tuple(
                tuple(shard) for shard in self.partition
            ),
            "degraded": tuple(
                self.shard_ids[position] in self._degraded
                for position in range(len(self.partition))
            ),
        }

    def is_degraded(self, position: int) -> bool:
        return self.shard_ids[position] in self._degraded

    # ------------------------------------------------------------------
    # supervised dispatch
    # ------------------------------------------------------------------

    @property
    def experts(self) -> Crowd:
        return self._experts

    @property
    def policy(self):
        return self._policy

    def broadcast(self, command: str, *payload) -> list:
        """Send one command to every shard; gather replies in shard
        order.  Process shards overlap their work (all commands are
        submitted before any reply is awaited); the supervisor enforces
        the deadline and repairs failures along the way."""
        return self.supervisor.broadcast(command, *payload)

    def multicast(self, positions, command: str, *payload) -> list:
        """Supervised dispatch to a subset of shard positions."""
        return self.supervisor.multicast(positions, command, *payload)

    def ensure_experts(self, experts: Crowd) -> None:
        """Propagate a panel change to every shard (idempotent)."""
        if experts is self._experts or experts == self._experts:
            self._experts = experts
            return
        self._experts = experts
        self.broadcast("replace_experts", experts)

    def sync_groups(self, belief: FactoredBelief) -> None:
        """Overwrite every shard's groups from ``belief`` (resume).

        The belief mirror is brought current first, so a worker that
        fails during the sync is rebuilt at the synced state.
        """
        if belief is not self._belief:
            for index in range(len(belief)):
                self._belief.replace_group(index, belief[index])
        payloads = [
            {index: state_wire_payload(belief[index]) for index in indices}
            for indices in self.partition
        ]
        self.supervisor.scatter("sync_groups", payloads)

    def stats(self) -> list[dict]:
        return self.broadcast("stats")

    def transport_stats(self) -> dict:
        """Pipe/shared-memory byte counters across the pool's shards.

        ``shared_payload_bytes`` is counted once however many workers
        exist — the regression test for startup cost asserts the
        per-worker ``init_bytes`` stay free of the panel/source payload.
        """
        unwrapped = [
            getattr(shard, "inner", shard) for shard in self.shards
        ]
        init_bytes = [
            int(getattr(shard, "init_bytes", 0)) for shard in unwrapped
        ]
        return {
            "shared_payload_bytes": (
                self._shared_payload.size
                if self._shared_payload is not None
                else 0
            ),
            "shared_payload_in_memory": (
                self._shared_payload is not None
                and self._shared_payload.uses_shared_memory
            ),
            "init_bytes": init_bytes,
            "init_bytes_total": sum(init_bytes),
            "bytes_sent": sum(
                int(getattr(shard, "bytes_sent", 0)) for shard in unwrapped
            ),
            "bytes_received": sum(
                int(getattr(shard, "bytes_received", 0))
                for shard in unwrapped
            ),
        }

    # ------------------------------------------------------------------
    # supervision surface
    # ------------------------------------------------------------------

    def attach_journal(self, path) -> None:
        """Journal every supervision incident as a ``shard_incident``
        record (resume replays the journaled failover layout)."""
        self.supervisor.attach_journal(path)

    def supervisor_stats(self) -> dict:
        return self.supervisor.stats.as_dict()

    @property
    def supervisor_incidents(self) -> list:
        return self.supervisor.incidents

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if OBS.enabled:
            # Migrate the ad-hoc transport/supervision counters into
            # the registry once per pool lifetime — gauges for the
            # byte totals, counter deltas for the interventions.
            OBS.publish_gauges(
                "repro_shard_transport", self.transport_stats()
            )
            OBS.publish_deltas(
                "repro_supervisor", self.supervisor.stats
            )
        for shard in self.shards:
            shard.close()
        # After the workers: a respawn can still map the segment while
        # any shard lives, so the pool owns its lifetime.
        if self._shared_payload is not None:
            self._shared_payload.close()
            self._shared_payload = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
