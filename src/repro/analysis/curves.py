"""Analysis of budget-vs-metric curves.

Tools for the questions a practitioner asks of the experiment output:
where does one method overtake another (crossover), how much budget
does a target accuracy cost, and which curve dominates overall
(area under the curve).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate(budgets: Sequence[float], values: Sequence[float]) -> None:
    if len(budgets) != len(values):
        raise ValueError("budgets and values must be the same length")
    if len(budgets) < 2:
        raise ValueError("need at least two curve points")
    if list(budgets) != sorted(budgets):
        raise ValueError("budgets must be sorted ascending")


def crossover_budget(
    budgets: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> float | None:
    """First budget at which curve A overtakes curve B.

    Returns the linearly interpolated budget where ``A - B`` changes
    from negative to non-negative, or ``None`` if A never overtakes B
    (including the case where A leads from the start).
    """
    _validate(budgets, series_a)
    _validate(budgets, series_b)
    difference = np.asarray(series_a, dtype=float) - np.asarray(
        series_b, dtype=float
    )
    if difference[0] >= 0:
        return None  # A never trails, so there is no overtaking point
    for index in range(1, len(difference)):
        if difference[index] >= 0:
            previous, current = difference[index - 1], difference[index]
            if current == previous:
                return float(budgets[index])
            fraction = -previous / (current - previous)
            return float(
                budgets[index - 1]
                + fraction * (budgets[index] - budgets[index - 1])
            )
    return None


def budget_to_reach(
    budgets: Sequence[float],
    values: Sequence[float],
    target: float,
) -> float | None:
    """Smallest (interpolated) budget at which the curve reaches
    ``target``; ``None`` if it never does."""
    _validate(budgets, values)
    values = np.asarray(values, dtype=float)
    if values[0] >= target:
        return float(budgets[0])
    for index in range(1, len(values)):
        if values[index] >= target:
            previous, current = values[index - 1], values[index]
            if current == previous:
                return float(budgets[index])
            fraction = (target - previous) / (current - previous)
            return float(
                budgets[index - 1]
                + fraction * (budgets[index] - budgets[index - 1])
            )
    return None


def area_under_curve(
    budgets: Sequence[float], values: Sequence[float]
) -> float:
    """Trapezoidal area under the curve, normalized by the budget span.

    Equals the budget-averaged metric value, so two curves over the same
    span are directly comparable.
    """
    _validate(budgets, values)
    budgets = np.asarray(budgets, dtype=float)
    values = np.asarray(values, dtype=float)
    span = budgets[-1] - budgets[0]
    if span <= 0:
        raise ValueError("budget span must be positive")
    return float(np.trapezoid(values, budgets) / span)


def improvement_rate(
    budgets: Sequence[float], values: Sequence[float]
) -> float:
    """Average metric improvement per unit budget over the whole curve."""
    _validate(budgets, values)
    span = budgets[-1] - budgets[0]
    if span <= 0:
        raise ValueError("budget span must be positive")
    return float((values[-1] - values[0]) / span)


def dominance_fraction(
    series_a: Sequence[float], series_b: Sequence[float]
) -> float:
    """Fraction of sampled budgets at which A is at least B."""
    if len(series_a) != len(series_b) or not series_a:
        raise ValueError("series must be non-empty and equally long")
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    return float(np.mean(a >= b))
