"""Curve analysis and multi-seed replication utilities."""

from .curves import (
    area_under_curve,
    budget_to_reach,
    crossover_budget,
    dominance_fraction,
    improvement_rate,
)
from .replication import (
    PairedComparison,
    ReplicatedSeries,
    compare_selectors,
    replicate_session,
)
from .theory import (
    answers_to_reach_confidence,
    greedy_gain_guarantee,
    majority_vote_error,
    posterior_error_after_checks,
)

__all__ = [
    "PairedComparison",
    "ReplicatedSeries",
    "answers_to_reach_confidence",
    "area_under_curve",
    "budget_to_reach",
    "compare_selectors",
    "crossover_budget",
    "dominance_fraction",
    "greedy_gain_guarantee",
    "improvement_rate",
    "majority_vote_error",
    "posterior_error_after_checks",
    "replicate_session",
]
