"""Closed-form quantities from the paper's analysis.

* :func:`majority_vote_error` — the introduction's motivating formula:
  the error rate of a majority vote over ``n`` independent workers with
  per-answer error ``e`` (for ``n = 3``: ``3 e^2 (1-e) + e^3 < e`` when
  ``e < 1/2``).
* :func:`posterior_error_after_checks` — probability the MAP label of a
  single fact is still wrong after ``n`` expert re-checks.
* :func:`greedy_gain_guarantee` — the ``(1 - 1/e)`` bound of §III-C.
* :func:`answers_to_reach_confidence` — how many expert answers a
  single fact needs before its posterior passes a confidence target.

Everything here is validated against simulation in the test suite.
"""

from __future__ import annotations

import math

from scipy.stats import binom


def majority_vote_error(error_rate: float, num_workers: int) -> float:
    """Error probability of a majority vote of ``num_workers`` answers.

    Workers are independent with the same per-answer error rate.  Ties
    (even ``num_workers``) count as half an error — the vote is decided
    by a fair coin.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must lie in [0, 1]")
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    # Subnormal rates overflow scipy's binomial internals; clamp to the
    # closed-form endpoints they are indistinguishable from.
    if error_rate < 1e-300:
        return 0.0
    if error_rate > 1.0 - 1e-12:
        return 1.0
    half = num_workers / 2.0
    # P(#errors > n/2) + 0.5 * P(#errors == n/2)
    errors_above = 1.0 - binom.cdf(math.floor(half), num_workers, error_rate)
    if num_workers % 2 == 0:
        tie = binom.pmf(num_workers // 2, num_workers, error_rate)
        return float(errors_above + 0.5 * tie)
    return float(errors_above)


def posterior_error_after_checks(
    prior_correct: float, expert_accuracy: float, num_checks: int
) -> float:
    """P(MAP label wrong) for one binary fact after ``num_checks``
    independent expert answers.

    The fact starts with prior probability ``prior_correct`` on the
    true label.  After ``c`` correct and ``w = n - c`` wrong expert
    answers the posterior odds of the truth are
    ``prior_odds * (p / (1-p))^(c - w)``; the MAP is wrong when those
    odds fall below 1 (ties again split by a coin).
    """
    if not 0.0 < prior_correct < 1.0:
        raise ValueError("prior_correct must lie in (0, 1)")
    if not 0.0 <= expert_accuracy <= 1.0:
        raise ValueError("expert_accuracy must lie in [0, 1]")
    if num_checks < 0:
        raise ValueError("num_checks must be >= 0")
    if num_checks == 0:
        # No expert randomness: the MAP picks the prior's mode.
        if prior_correct > 0.5:
            return 0.0
        if prior_correct == 0.5:
            return 0.5
        return 1.0
    if expert_accuracy in (0.0, 1.0):
        # Deterministic experts resolve the fact after one check.
        return 0.0 if expert_accuracy == 1.0 else 1.0

    prior_log_odds = math.log(prior_correct / (1.0 - prior_correct))
    answer_log_odds = math.log(
        expert_accuracy / (1.0 - expert_accuracy)
    )
    error = 0.0
    for correct in range(num_checks + 1):
        weight = binom.pmf(correct, num_checks, expert_accuracy)
        log_odds = prior_log_odds + (
            2 * correct - num_checks
        ) * answer_log_odds
        if log_odds < 0.0:
            error += weight
        elif log_odds == 0.0:
            error += 0.5 * weight
    return float(error)


def answers_to_reach_confidence(
    prior_correct: float,
    expert_accuracy: float,
    target_confidence: float,
    max_answers: int = 1000,
) -> int | None:
    """Minimum unanimous expert answers for the posterior on the true
    label to reach ``target_confidence``.

    A best-case bound (every answer agrees with the truth) useful for
    budget planning; ``None`` if unattainable within ``max_answers``
    (e.g. coin-flip experts).
    """
    if not 0.0 < prior_correct < 1.0:
        raise ValueError("prior_correct must lie in (0, 1)")
    if not 0.5 <= target_confidence < 1.0:
        raise ValueError("target_confidence must lie in [0.5, 1)")
    if not 0.0 <= expert_accuracy <= 1.0:
        raise ValueError("expert_accuracy must lie in [0, 1]")
    if expert_accuracy <= 0.5:
        return 0 if prior_correct >= target_confidence else None
    posterior = prior_correct
    for count in range(max_answers + 1):
        if posterior >= target_confidence:
            return count
        numerator = posterior * expert_accuracy
        denominator = numerator + (1.0 - posterior) * (1.0 - expert_accuracy)
        posterior = numerator / denominator
    return None


def greedy_gain_guarantee(optimal_gain: float) -> float:
    """The §III-C (1 - 1/e) lower bound on the greedy's expected
    quality gain given the optimum's."""
    if optimal_gain < 0:
        raise ValueError("optimal_gain must be non-negative")
    return (1.0 - 1.0 / math.e) * optimal_gain
