"""Multi-seed replication of HC runs with aggregate statistics.

A single simulated run's curve carries seed noise; reviewers (and the
paper's own error-bar-free plots) deserve better.  This module re-runs
a session across seeds and reports mean and standard deviation per
budget point, plus a simple paired comparison between two
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.hc import RunResult
from ..core.selection import Selector
from ..datasets.schema import CrowdLabelingDataset
from ..experiments.runner import sample_at_budgets
from ..simulation.session import SessionConfig, run_hc_session


@dataclass
class ReplicatedSeries:
    """Mean/std curves over replicated runs."""

    label: str
    budgets: list[float]
    accuracy_mean: list[float]
    accuracy_std: list[float]
    quality_mean: list[float]
    quality_std: list[float]
    num_runs: int

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "budgets": self.budgets,
            "accuracy_mean": self.accuracy_mean,
            "accuracy_std": self.accuracy_std,
            "quality_mean": self.quality_mean,
            "quality_std": self.quality_std,
            "num_runs": self.num_runs,
        }


def replicate_session(
    dataset: CrowdLabelingDataset,
    config: SessionConfig,
    budgets: Sequence[float],
    seeds: Sequence[int],
    label: str = "HC",
    selector_factory: Callable[[], Selector] | None = None,
) -> ReplicatedSeries:
    """Run the session once per seed and aggregate the sampled curves.

    Only the expert-panel randomness varies across runs (the dataset
    and initialization are fixed), isolating checking-loop noise.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    accuracy_rows = []
    quality_rows = []
    for seed in seeds:
        run_config = SessionConfig(
            theta=config.theta,
            k=config.k,
            budget=config.budget,
            initializer=config.initializer,
            seed=seed,
            smoothing=config.smoothing,
        )
        selector = selector_factory() if selector_factory else None
        result = run_hc_session(dataset, run_config, selector=selector)
        accuracy, quality = sample_at_budgets(result, budgets)
        accuracy_rows.append(accuracy)
        quality_rows.append(quality)
    accuracy_matrix = np.asarray(accuracy_rows, dtype=float)
    quality_matrix = np.asarray(quality_rows, dtype=float)
    return ReplicatedSeries(
        label=label,
        budgets=list(budgets),
        accuracy_mean=accuracy_matrix.mean(axis=0).tolist(),
        accuracy_std=accuracy_matrix.std(axis=0).tolist(),
        quality_mean=quality_matrix.mean(axis=0).tolist(),
        quality_std=quality_matrix.std(axis=0).tolist(),
        num_runs=len(seeds),
    )


@dataclass
class PairedComparison:
    """Outcome of a paired multi-seed comparison of two configurations."""

    label_a: str
    label_b: str
    final_quality_diffs: list[float] = field(default_factory=list)

    @property
    def mean_difference(self) -> float:
        return float(np.mean(self.final_quality_diffs))

    @property
    def wins_a(self) -> int:
        return int(sum(diff > 0 for diff in self.final_quality_diffs))

    @property
    def wins_b(self) -> int:
        return int(sum(diff < 0 for diff in self.final_quality_diffs))


def compare_selectors(
    dataset: CrowdLabelingDataset,
    config: SessionConfig,
    selector_a: Callable[[], Selector],
    selector_b: Callable[[], Selector],
    seeds: Sequence[int],
    label_a: str = "A",
    label_b: str = "B",
) -> PairedComparison:
    """Paired comparison: same seeds, two selectors, final quality."""
    comparison = PairedComparison(label_a=label_a, label_b=label_b)
    for seed in seeds:
        run_config = SessionConfig(
            theta=config.theta,
            k=config.k,
            budget=config.budget,
            initializer=config.initializer,
            seed=seed,
            smoothing=config.smoothing,
        )
        result_a = run_hc_session(
            dataset, run_config, selector=selector_a()
        )
        result_b = run_hc_session(
            dataset, run_config, selector=selector_b()
        )
        comparison.final_quality_diffs.append(
            result_a.history[-1].quality - result_b.history[-1].quality
        )
    return comparison
