"""End-to-end checking sessions: the one-call HC pipeline.

:func:`run_hc_session` wires together the full Algorithm 3 flow on a
dataset — split the crowd, aggregate the preliminary answers, build the
belief, run the checking loop against a simulated expert panel — and
returns the :class:`~repro.core.hc.RunResult`.  The experiment harness
and the examples are thin wrappers over this function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..aggregation.base import Aggregator
from ..aggregation.registry import make_aggregator
from ..core.hc import HierarchicalCrowdsourcing, RunResult
from ..core.kernel import default_belief_epsilon
from ..core.selection import LazyGreedySelector, Selector
from ..core.trust import TrustPolicy, select_gold_probes
from ..core.workers import Crowd
from ..datasets.grouping import initialize_belief
from ..datasets.schema import CrowdLabelingDataset
from .faults import FaultModel, FaultyExpertPanel
from .oracle import SimulatedExpertPanel
from .resilient import ResilientCheckingSession, RetryPolicy


@dataclass
class SessionConfig:
    """Configuration of one HC session (the paper's knobs).

    Attributes
    ----------
    theta:
        Accuracy threshold splitting the crowd (paper: 0.9).
    k:
        Checking queries selected per round (paper: 1-3 in figures,
        up to 10 in Table III).
    budget:
        Expert-answer budget ``B`` (paper: up to 1000).
    initializer:
        Aggregator name for belief initialization (paper: EBCC).
    seed:
        Seed for the simulated expert panel.
    smoothing:
        Marginal smoothing used at initialization.
    faults:
        Optional :class:`~repro.simulation.faults.FaultModel`.  When
        set, the answer source is wrapped in a
        :class:`~repro.simulation.faults.FaultyExpertPanel` and the
        loop runs through the fault-tolerant
        :class:`~repro.simulation.resilient.ResilientCheckingSession`
        (retry, backoff, partial acceptance, tempered updates).
    retry_policy:
        Retry/backoff knobs for the resilient runtime; only used when
        ``faults`` or ``journal_path`` is set.
    journal_path:
        When set, the session appends a crash-safe JSONL journal there
        (implies the resilient runtime even without faults).
    trust_policy:
        When set, the resilient runtime runs with online trust
        supervision (per-worker accuracy posteriors, gold probes,
        circuit breakers); implies the resilient runtime.  The probe
        pool is carved out of the dataset's ground truth with
        :func:`~repro.core.trust.select_gold_probes` at
        ``gold_fraction`` unless the policy's probing is disabled.
    gold_fraction:
        Fraction of ground-truth facts reserved as the trust layer's
        gold-probe pool (seeded from the policy's ``seed``).
    reserve_accuracies:
        Accuracies of reserve experts available for reassignment and
        quarantine substitution (workers named ``r0, r1, ...``).
    belief_epsilon:
        Truncation budget of the sparse belief kernel.  ``0`` (the
        default) keeps the exact dense kernel; a positive value builds
        :class:`~repro.core.kernel.SparseBeliefState` groups whose
        updates drop negligible-mass observations within a
        total-variation bound of ``belief_epsilon`` per update.  The
        default can be overridden fleet-wide with the
        ``REPRO_BELIEF_EPSILON`` environment variable (the CI kernel leg
        uses it to run whole suites on the truncated kernel).
    """

    theta: float = 0.9
    k: int = 1
    budget: float = 1000.0
    initializer: str = "EBCC"
    seed: int = 0
    smoothing: float = 0.01
    faults: FaultModel | None = None
    retry_policy: RetryPolicy | None = None
    journal_path: str | Path | None = None
    trust_policy: TrustPolicy | None = None
    gold_fraction: float = 0.1
    reserve_accuracies: tuple[float, ...] = ()
    belief_epsilon: float = field(default_factory=default_belief_epsilon)


def run_hc_session(
    dataset: CrowdLabelingDataset,
    config: SessionConfig | None = None,
    selector: Selector | None = None,
    aggregator: Aggregator | None = None,
    answer_source=None,
) -> RunResult:
    """Run the full hierarchical crowdsourcing pipeline on a dataset.

    Parameters
    ----------
    dataset:
        The crowd-labeling dataset (recorded preliminary answers plus
        ground truth for the simulated experts and metrics).
    config:
        Session knobs; defaults to the paper's main setting.
    selector:
        Checking-task selector; defaults to the greedy Approx.
    aggregator:
        Initialization aggregator instance; overrides
        ``config.initializer`` when given.
    answer_source:
        Expert answer source; defaults to a fresh-sampling
        :class:`SimulatedExpertPanel` seeded from ``config.seed``.
    """
    config = config or SessionConfig()
    experts, _preliminary = dataset.split_crowd(config.theta)
    if len(experts) == 0:
        raise ValueError(
            f"no worker reaches theta={config.theta}; cannot form CE"
        )
    if aggregator is None:
        aggregator = make_aggregator(config.initializer)
    belief, _init_result = initialize_belief(
        dataset, aggregator, config.theta, smoothing=config.smoothing,
        belief_epsilon=config.belief_epsilon,
    )
    if answer_source is None:
        answer_source = SimulatedExpertPanel(
            dataset.ground_truth, rng=np.random.default_rng(config.seed)
        )
    if (
        config.faults is not None
        or config.journal_path is not None
        or config.trust_policy is not None
    ):
        if config.faults is not None:
            answer_source = FaultyExpertPanel(answer_source, config.faults)
        gold_facts = None
        if config.trust_policy is not None:
            gold_facts = select_gold_probes(
                dataset.ground_truth,
                fraction=config.gold_fraction,
                seed=config.trust_policy.seed,
            )
        reserve = (
            Crowd.from_accuracies(config.reserve_accuracies, prefix="r")
            if config.reserve_accuracies
            else None
        )
        session = ResilientCheckingSession(
            belief,
            experts,
            config.budget,
            selector=selector or LazyGreedySelector(),
            k=config.k,
            ground_truth=dataset.ground_truth,
            retry_policy=config.retry_policy,
            reserve_experts=reserve,
            journal_path=config.journal_path,
            trust_policy=config.trust_policy,
            gold_facts=gold_facts,
            seed=config.seed,
        )
        return session.run(answer_source)
    runner = HierarchicalCrowdsourcing(
        experts=experts,
        selector=selector or LazyGreedySelector(),
        k=config.k,
    )
    return runner.run(
        belief,
        answer_source,
        config.budget,
        ground_truth=dataset.ground_truth,
    )
