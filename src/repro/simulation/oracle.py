"""Simulated answer sources for the checking loop.

The paper's experiments replay recorded crowd data: "for those datasets
with complete labels from all workers, the label checking is done
offline and does not involve human interaction.  The repeated task
selection and answer collection can be regarded as a simulated online
crowdsourcing framework."  These classes implement that simulation.

* :class:`SimulatedExpertPanel` samples each requested answer from the
  worker's symmetric error model against the ground truth — every ask
  is an independent draw (the paper's setting where a query can be
  re-checked and receive a fresh answer).
* :class:`CachedExpertPanel` draws each (worker, fact) answer once and
  repeats it on re-asks — modeling workers who will not change their
  mind.  Useful for ablations of the "repeated wrong answers" effect
  the paper observes at high budgets.
* :class:`ScriptedAnswerSource` replays explicitly supplied answers,
  used by deterministic tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.answers import AnswerFamily, AnswerSet
from ..core.workers import Crowd, Worker


class SimulatedExpertPanel:
    """Fresh Bernoulli answers against the ground truth on every ask.

    Parameters
    ----------
    ground_truth:
        ``fact_id -> bool`` true labels.
    rng:
        Seed or generator for reproducible runs.
    """

    def __init__(
        self,
        ground_truth: Mapping[int, bool],
        rng: np.random.Generator | int | None = None,
    ):
        self._truth = dict(ground_truth)
        self._rng = np.random.default_rng(rng)
        #: Total answers served (lets tests assert budget accounting).
        self.answers_served = 0

    def _answer(self, worker: Worker, fact_id: int) -> bool:
        truth = self._truth[fact_id]
        correct = self._rng.random() < worker.accuracy
        return truth if correct else not truth

    def extend_truth(self, ground_truth: Mapping[int, bool]) -> None:
        """Teach the panel facts that streamed in after construction.

        The open-world runtime creates the panel when the first task
        group seals, then keeps feeding it the ground truth of facts
        that arrive later; existing entries are never overwritten, so
        the RNG-replay contract of :meth:`get_state` is unaffected.
        """
        for fact_id, value in ground_truth.items():
            self._truth.setdefault(int(fact_id), bool(value))

    def get_state(self) -> dict:
        """JSON-compatible snapshot of the panel's RNG progress.

        Restoring it with :meth:`set_state` replays the exact same
        future answer stream — the hook the resilient session's journal
        uses to make kill-and-resume byte-identical to an uninterrupted
        run.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "answers_served": self.answers_served,
        }

    def set_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.answers_served = int(state.get("answers_served", 0))

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily:
        """Sample one answer per (expert, queried fact)."""
        answer_sets = []
        for worker in experts:
            answers = {
                fact_id: self._answer(worker, fact_id)
                for fact_id in query_fact_ids
            }
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
            self.answers_served += len(answers)
        return AnswerFamily(answer_sets=tuple(answer_sets))


class MismatchedExpertPanel(SimulatedExpertPanel):
    """Answers with *true* accuracies while the caller believes the
    (possibly mis-estimated) accuracies on the Worker objects.

    Models the calibration gap: the operator selects tasks and updates
    beliefs with estimated ``Pr_cr``, but the humans behind the ids err
    at their true rates.  Used by the miscalibration ablation.
    """

    def __init__(
        self,
        ground_truth: Mapping[int, bool],
        true_accuracies: Mapping[str, float],
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(ground_truth, rng)
        self._true_accuracies = dict(true_accuracies)

    def _answer(self, worker: Worker, fact_id: int) -> bool:
        truth = self._truth[fact_id]
        accuracy = self._true_accuracies[worker.worker_id]
        correct = self._rng.random() < accuracy
        return truth if correct else not truth


class CachedExpertPanel(SimulatedExpertPanel):
    """Like :class:`SimulatedExpertPanel`, but a worker asked the same
    fact twice repeats their first answer."""

    def __init__(
        self,
        ground_truth: Mapping[int, bool],
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__(ground_truth, rng)
        self._cache: dict[tuple[str, int], bool] = {}

    def _answer(self, worker: Worker, fact_id: int) -> bool:
        key = (worker.worker_id, fact_id)
        if key not in self._cache:
            self._cache[key] = super()._answer(worker, fact_id)
        return self._cache[key]

    def get_state(self) -> dict:
        state = super().get_state()
        state["cache"] = [
            [worker_id, fact_id, answer]
            for (worker_id, fact_id), answer in self._cache.items()
        ]
        return state

    def set_state(self, state: dict) -> None:
        super().set_state(state)
        self._cache = {
            (str(worker_id), int(fact_id)): bool(answer)
            for worker_id, fact_id, answer in state.get("cache", [])
        }


class DegradingExpertPanel(SimulatedExpertPanel):
    """A panel where one worker's *true* accuracy drops mid-campaign.

    The drop is keyed on the number of :meth:`collect` calls served, so
    it is deterministic under journal resume (the counter is part of the
    panel state).  Models the trust layer's target failure: a declared
    expert whose real reliability collapses after the campaign starts.

    Parameters
    ----------
    ground_truth, rng:
        As in :class:`SimulatedExpertPanel`.
    degraded_worker_id:
        The worker whose behaviour changes.
    degraded_accuracy:
        Their true accuracy from ``degrade_after_collects`` onwards
        (e.g. 0.5 == coin flip).
    degrade_after_collects:
        Number of :meth:`collect` calls served at full accuracy before
        the drop takes effect.
    """

    def __init__(
        self,
        ground_truth: Mapping[int, bool],
        degraded_worker_id: str,
        degraded_accuracy: float = 0.5,
        degrade_after_collects: int = 0,
        rng: np.random.Generator | int | None = None,
    ):
        if not 0.0 <= degraded_accuracy <= 1.0:
            raise ValueError(
                f"degraded_accuracy must lie in [0, 1], "
                f"got {degraded_accuracy}"
            )
        if degrade_after_collects < 0:
            raise ValueError("degrade_after_collects must be non-negative")
        super().__init__(ground_truth, rng)
        self._degraded_worker_id = degraded_worker_id
        self._degraded_accuracy = float(degraded_accuracy)
        self._degrade_after = int(degrade_after_collects)
        self.collect_calls = 0

    @property
    def is_degraded(self) -> bool:
        return self.collect_calls >= self._degrade_after

    def _answer(self, worker: Worker, fact_id: int) -> bool:
        if worker.worker_id == self._degraded_worker_id and self.is_degraded:
            worker = worker.with_accuracy(self._degraded_accuracy)
        return super()._answer(worker, fact_id)

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily:
        family = super().collect(query_fact_ids, experts)
        self.collect_calls += 1
        return family

    def get_state(self) -> dict:
        state = super().get_state()
        state["collect_calls"] = self.collect_calls
        return state

    def set_state(self, state: dict) -> None:
        super().set_state(state)
        self.collect_calls = int(state.get("collect_calls", 0))


class ScriptedAnswerSource:
    """Replays a fixed ``(worker_id, fact_id) -> answer`` script.

    Raises ``KeyError`` if the loop requests an unscripted answer, so
    tests fail loudly when selection deviates from expectations.
    """

    def __init__(self, script: Mapping[tuple[str, int], bool]):
        self._script = dict(script)
        self.requests: list[tuple[str, int]] = []

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily:
        answer_sets = []
        for worker in experts:
            answers = {}
            for fact_id in query_fact_ids:
                self.requests.append((worker.worker_id, fact_id))
                answers[fact_id] = self._script[(worker.worker_id, fact_id)]
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
        return AnswerFamily(answer_sets=tuple(answer_sets))
