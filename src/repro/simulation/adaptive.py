"""Adaptive label collection with a sequential stopping rule.

Implements the related-work strategy of Abraham et al. [38] that the
paper contrasts with its own fixed-redundancy setting: labels for a
task are collected one at a time, stopping as soon as the vote gap is
decisive,

    |V_Yes(t) - V_No(t)| > C * sqrt(t) - eps * t        (paper Eq. 36)

where ``t`` is the number of answers so far.  The rule spends more
answers on contested tasks and fewer on easy ones, which makes it a
useful preliminary-tier companion (and ablation target) for HC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..aggregation.base import Annotation, AnswerMatrix
from ..core.workers import Crowd


@dataclass(frozen=True)
class StoppingRule:
    """The sequential rule of Eq. 36.

    Parameters
    ----------
    threshold_scale:
        The constant ``C``; larger values demand a wider vote gap.
    drift:
        The ``eps`` term that relaxes the requirement as ``t`` grows
        (guaranteeing termination even on maximally contested tasks).
    min_answers, max_answers:
        Hard bounds on per-task answers (the rule is only consulted in
        between).
    """

    threshold_scale: float = 2.0
    drift: float = 0.3
    min_answers: int = 1
    max_answers: int = 15

    def __post_init__(self) -> None:
        if self.threshold_scale < 0 or self.drift < 0:
            raise ValueError("threshold_scale and drift must be >= 0")
        if not 1 <= self.min_answers <= self.max_answers:
            raise ValueError(
                "need 1 <= min_answers <= max_answers"
            )

    def should_stop(self, votes_yes: int, votes_no: int) -> bool:
        """Whether collection may stop after these votes."""
        total = votes_yes + votes_no
        if total < self.min_answers:
            return False
        if total >= self.max_answers:
            return True
        gap = abs(votes_yes - votes_no)
        return gap > self.threshold_scale * math.sqrt(total) - self.drift * total


def collect_adaptive_annotations(
    ground_truth: Mapping[int, bool],
    crowd: Crowd,
    rule: StoppingRule | None = None,
    rng: np.random.Generator | int | None = None,
) -> AnswerMatrix:
    """Simulate adaptive label collection over all facts.

    For each fact, workers are drawn without replacement from the crowd
    (re-drawing from the full pool once exhausted is never needed since
    ``max_answers <= |crowd|`` is enforced) and answers are sampled from
    the symmetric error model until the stopping rule fires.

    Returns an :class:`AnswerMatrix` whose per-task answer counts vary
    with task difficulty.
    """
    rule = rule or StoppingRule()
    if rule.max_answers > len(crowd):
        raise ValueError(
            "max_answers cannot exceed the crowd size "
            f"({rule.max_answers} > {len(crowd)})"
        )
    rng = np.random.default_rng(rng)
    accuracies = crowd.accuracies
    annotations: list[Annotation] = []
    fact_ids = sorted(ground_truth)
    for fact_id in fact_ids:
        truth = ground_truth[fact_id]
        order = rng.permutation(len(crowd))
        votes_yes = 0
        votes_no = 0
        for column in order:
            correct = rng.random() < accuracies[column]
            answer = truth if correct else not truth
            if answer:
                votes_yes += 1
            else:
                votes_no += 1
            annotations.append(
                Annotation(
                    task=fact_id, worker=int(column), label=int(answer)
                )
            )
            if rule.should_stop(votes_yes, votes_no):
                break
    return AnswerMatrix(
        annotations,
        num_tasks=max(fact_ids) + 1,
        num_workers=len(crowd),
        num_classes=2,
    )
