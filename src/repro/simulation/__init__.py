"""Simulated online crowdsourcing (paper section IV-A)."""

from .adaptive import StoppingRule, collect_adaptive_annotations
from .faults import AnswerCollectionTimeout, FaultModel, FaultyExpertPanel
from .online import OnlineCheckingSession, SessionStateError
from .oracle import (
    CachedExpertPanel,
    DegradingExpertPanel,
    MismatchedExpertPanel,
    ScriptedAnswerSource,
    SimulatedExpertPanel,
)
from .resilient import (
    ResilientCheckingSession,
    ResilientRunResult,
    RetryPolicy,
)
from .session import SessionConfig, run_hc_session

__all__ = [
    "AnswerCollectionTimeout",
    "CachedExpertPanel",
    "DegradingExpertPanel",
    "FaultModel",
    "FaultyExpertPanel",
    "MismatchedExpertPanel",
    "OnlineCheckingSession",
    "ResilientCheckingSession",
    "ResilientRunResult",
    "RetryPolicy",
    "ScriptedAnswerSource",
    "SessionConfig",
    "SessionStateError",
    "SimulatedExpertPanel",
    "StoppingRule",
    "collect_adaptive_annotations",
    "run_hc_session",
]
