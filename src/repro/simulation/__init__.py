"""Simulated online crowdsourcing (paper section IV-A)."""

from .adaptive import StoppingRule, collect_adaptive_annotations
from .online import OnlineCheckingSession, SessionStateError
from .oracle import (
    CachedExpertPanel,
    MismatchedExpertPanel,
    ScriptedAnswerSource,
    SimulatedExpertPanel,
)
from .session import SessionConfig, run_hc_session

__all__ = [
    "CachedExpertPanel",
    "MismatchedExpertPanel",
    "OnlineCheckingSession",
    "ScriptedAnswerSource",
    "SessionConfig",
    "SessionStateError",
    "SimulatedExpertPanel",
    "StoppingRule",
    "collect_adaptive_annotations",
    "run_hc_session",
]
