"""Simulated online crowdsourcing (paper section IV-A)."""

import importlib

# Lazy re-exports (PEP 562): `session` pulls the aggregation registry
# (scipy), which spawned shard workers importing `.online` through the
# package root must not pay for.
_EXPORTS = {
    "StoppingRule": "adaptive",
    "collect_adaptive_annotations": "adaptive",
    "AnswerCollectionTimeout": "faults",
    "FaultModel": "faults",
    "FaultyExpertPanel": "faults",
    "OnlineCheckingSession": "online",
    "SessionStateError": "online",
    "CachedExpertPanel": "oracle",
    "DegradingExpertPanel": "oracle",
    "MismatchedExpertPanel": "oracle",
    "ScriptedAnswerSource": "oracle",
    "SimulatedExpertPanel": "oracle",
    "ResilientCheckingSession": "resilient",
    "ResilientRunResult": "resilient",
    "RetryPolicy": "resilient",
    "SessionConfig": "session",
    "default_belief_epsilon": "session",
    "run_hc_session": "session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(
        importlib.import_module(f".{module_name}", __name__), name
    )
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
