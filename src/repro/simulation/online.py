"""Sans-IO online checking session for real crowdsourcing platforms.

:class:`HierarchicalCrowdsourcing` drives the whole loop itself, which
suits simulation.  A real deployment instead needs to *pause* between
selecting queries and receiving human answers (minutes to days later).
:class:`OnlineCheckingSession` inverts control:

    session = OnlineCheckingSession(belief, experts, budget=1000)
    while (queries := session.next_queries()) is not None:
        family = my_platform.ask(queries, experts)   # human latency here
        session.submit(family)
    labels = session.final_labels()

The session enforces the same budget accounting as Algorithm 3 and
produces the same :class:`~repro.core.hc.RoundRecord` history, so
simulated and live runs are directly comparable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.answers import AnswerFamily, AnswerSet, PartialAnswerFamily
from ..core.budget import CheckingBudget, CostModel
from ..core.hc import HierarchicalCrowdsourcing, RoundRecord
from ..core.incidents import FaultEvent
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import LazyGreedySelector, Selector
from ..core.update import (
    InconsistentEvidenceError,
    tempered_update_with_answer_set,
    update_with_answer_set,
)
from ..core.workers import Crowd
from ..obs import OBS


class SessionStateError(RuntimeError):
    """Raised on out-of-order use (submit without pending queries,
    next_queries while answers are pending, or use after completion)."""


def stage_partial_updates(
    belief: FactoredBelief,
    family: PartialAnswerFamily,
    *,
    temper: bool,
    round_index: int,
    accuracy_overrides: Mapping[str, float] | None = None,
    fact_filter: "frozenset[int] | set[int] | None" = None,
) -> tuple[
    dict[int, BeliefState],
    list[tuple[tuple[int, int], FaultEvent]],
]:
    """Stage per-worker Lemma-3 updates per group without committing.

    This is the pure core of :meth:`OnlineCheckingSession.submit_partial`:
    it computes each touched group's posterior state on copies (the
    belief is *not* mutated) so a raised
    :class:`InconsistentEvidenceError` (``temper=False``) leaves the
    caller's belief untouched.  The parallel engine runs this same
    function inside every shard worker, restricted via ``fact_filter`` to
    the facts the shard owns, so shard-local posteriors are bit-identical
    to the serial computation.

    Returns ``(staged, tempered)`` where ``staged`` maps group index to
    the updated :class:`BeliefState` and ``tempered`` holds the
    ``tempered_update`` fault events each keyed by
    ``(answer-set index, position of the group's first fact)`` — sorting
    by that key reproduces the exact order the serial loop emits them
    in, even when the events were produced by different shards.
    """
    staged: dict[int, BeliefState] = {}
    tempered: list[tuple[tuple[int, int], FaultEvent]] = []
    for set_index, answer_set in enumerate(family):
        worker = answer_set.worker
        if accuracy_overrides and worker.worker_id in accuracy_overrides:
            worker = worker.with_accuracy(
                accuracy_overrides[worker.worker_id]
            )
        by_group: dict[int, dict[int, bool]] = {}
        first_position: dict[int, int] = {}
        for position, (fact_id, answer) in enumerate(
            answer_set.answers.items()
        ):
            if fact_filter is not None and fact_id not in fact_filter:
                continue
            group_index = belief.group_index_of(fact_id)
            if group_index not in by_group:
                first_position[group_index] = position
            by_group.setdefault(group_index, {})[fact_id] = answer
        for group_index, answers in by_group.items():
            state = staged.get(group_index, belief[group_index])
            sub = AnswerSet(worker=worker, answers=answers)
            try:
                updated = update_with_answer_set(state, sub)
            except InconsistentEvidenceError as error:
                if not temper:
                    wrapped = InconsistentEvidenceError(
                        f"{error} (round {round_index}, worker "
                        f"{answer_set.worker.worker_id!r}, answers "
                        f"{dict(sorted(answers.items()))})"
                    )
                    # The parallel engine orders errors from different
                    # shards by this key so the coordinator re-raises
                    # exactly the error the serial loop hits first.
                    wrapped.stage_key = (
                        set_index, first_position[group_index]
                    )
                    raise wrapped from error
                updated, _ = tempered_update_with_answer_set(state, sub)
                tempered.append(
                    (
                        (set_index, first_position[group_index]),
                        FaultEvent(
                            kind="tempered_update",
                            round_index=round_index,
                            worker_id=answer_set.worker.worker_id,
                            fact_ids=tuple(sorted(answers)),
                            detail="zero-evidence answers; likelihood "
                                   "floored and renormalized",
                        ),
                    )
                )
            staged[group_index] = updated
    return staged, tempered


class OnlineCheckingSession:
    """Step-wise checking loop with externalized answer collection.

    Parameters
    ----------
    belief:
        The initialized factored belief (copied; caller's object stays
        untouched).
    experts:
        The checking tier CE.
    budget:
        Expert-answer budget ``B``.
    selector, k, cost_model:
        As in :class:`~repro.core.hc.HierarchicalCrowdsourcing`; the
        selector defaults to the lazy-greedy engine
        (:class:`~repro.core.selection.LazyGreedySelector`), whose
        cross-round gain cache is invalidated for exactly the groups
        each submitted round updates.
    ground_truth:
        Optional truth map enabling accuracy tracking in the history.
    update_engine:
        Optional delegate that owns the Bayesian updates.  ``None``
        (default) applies updates in-process; the parallel engine
        passes a sharded implementation that stages updates inside the
        shard workers and mirrors the committed group states back here.
        The delegate must expose ``apply_family(belief, family)`` and
        ``apply_partial(belief, family, *, temper, round_index,
        accuracy_overrides)``; both mutate ``belief`` and return the
        updated group indices (``apply_partial`` also returns the
        tempered-update events, in serial emission order).
    """

    def __init__(
        self,
        belief: FactoredBelief,
        experts: Crowd,
        budget: "float | CheckingBudget",
        selector: Selector | None = None,
        k: int = 1,
        cost_model: CostModel | None = None,
        ground_truth: Mapping[int, bool] | None = None,
        update_engine=None,
    ):
        if len(experts) == 0:
            raise ValueError("the expert crowd CE must not be empty")
        if k < 1:
            raise ValueError("k must be at least 1")
        self._belief = belief.copy()
        self._experts = experts
        self._selector = selector or LazyGreedySelector()
        self._k = k
        if isinstance(budget, CheckingBudget):
            # Caller-owned tracker (e.g. the engine's ledger-backed
            # budget); its float accounting must match CheckingBudget's
            # exactly for checkpoints to stay byte-identical.
            if cost_model is not None and budget.cost_model is not cost_model:
                raise ValueError(
                    "pass the cost model inside the budget tracker, "
                    "not separately"
                )
            self._budget = budget
        else:
            self._budget = CheckingBudget(budget, cost_model=cost_model)
        self._update_engine = update_engine
        self._ground_truth = (
            dict(ground_truth) if ground_truth is not None else None
        )
        self._pending: tuple[int, ...] | None = None
        self._round_index = 0
        self._finished = False
        # The loop-application logic is shared with the batch runner.
        self._applier = HierarchicalCrowdsourcing(
            experts=experts, selector=self._selector, k=k,
            cost_model=cost_model,
        )
        self.history: list[RoundRecord] = [
            self._record(-1, (), 0.0)
        ]

    # ------------------------------------------------------------------

    @property
    def belief(self) -> FactoredBelief:
        return self._belief

    @property
    def experts(self) -> Crowd:
        """The current checking panel."""
        return self._experts

    @property
    def budget(self) -> CheckingBudget:
        """The budget tracker itself (teardown paths close a
        ledger-backed tracker to release an orphaned reservation)."""
        return self._budget

    @property
    def remaining_budget(self) -> float:
        return self._budget.remaining

    @property
    def spent_budget(self) -> float:
        return self._budget.spent

    @property
    def is_finished(self) -> bool:
        return self._finished

    @property
    def round_index(self) -> int:
        """Index of the next round to complete."""
        return self._round_index

    @property
    def pending_queries(self) -> tuple[int, ...] | None:
        return self._pending

    # ------------------------------------------------------------------

    def next_queries(self) -> list[int] | None:
        """Select the next checking-task set, or ``None`` when done.

        ``None`` means either the budget cannot fund another round or no
        fact offers positive expected gain; the session is finished.
        """
        if self._finished:
            return None
        if self._pending is not None:
            raise SessionStateError(
                "answers for the previous query set are still pending"
            )
        affordable = self._budget.affordable_queries(self._experts, self._k)
        if affordable == 0:
            self._finished = True
            return None
        with OBS.phase("select"):
            queries = self._selector.select(
                self._belief, self._experts, affordable
            )
        if OBS.enabled:
            stats = getattr(self._selector, "stats", None)
            if stats is not None:
                OBS.publish_deltas("repro_selection", stats)
        if not queries:
            self._finished = True
            return None
        self._pending = tuple(queries)
        # Ledger-backed trackers reserve the worst-case round cost here
        # and settle it at submit/abandon time (reservation/refund), so
        # concurrent campaigns sharing a ledger cannot double-spend.
        reserve = getattr(self._budget, "reserve_pending", None)
        if callable(reserve):
            reserve(len(queries), self._experts)
        return list(queries)

    def submit(self, family: AnswerFamily) -> RoundRecord:
        """Apply collected expert answers for the pending query set."""
        if self._finished:
            raise SessionStateError("session is finished")
        if self._pending is None:
            raise SessionStateError(
                "no pending queries; call next_queries() first"
            )
        if set(family.query_fact_ids) != set(self._pending):
            raise ValueError(
                f"answer family covers {sorted(family.query_fact_ids)}, "
                f"expected {sorted(self._pending)}"
            )
        missing = [
            worker.worker_id
            for worker in self._experts
            if all(
                answer_set.worker.worker_id != worker.worker_id
                for answer_set in family
            )
        ]
        if missing:
            raise ValueError(
                f"answer family is missing experts: {missing}"
            )
        with OBS.phase("update"):
            if self._update_engine is not None:
                updated = self._update_engine.apply_family(
                    self._belief, family
                )
                self._invalidate(updated)
            else:
                self._applier._apply_family(self._belief, family)
        cost = self._budget.charge_round(len(self._pending), self._experts)
        record = self._record(self._round_index, self._pending, cost)
        self.history.append(record)
        self._round_index += 1
        self._pending = None
        return record

    def submit_partial(
        self,
        family: AnswerFamily | PartialAnswerFamily,
        *,
        temper: bool = True,
        fault_events: Sequence[FaultEvent] = (),
        accuracy_overrides: Mapping[str, float] | None = None,
    ) -> RoundRecord:
        """Apply whatever answers actually came back for the pending set.

        Unlike :meth:`submit`, missing workers and partially answered
        query sets are accepted: the Bayesian update conditions only on
        the answers received (Lemma 3 — workers are conditionally
        independent given the observation, so sequential per-worker
        updates over the responders are exact), and the budget is
        charged per answer received instead of per full round.

        Parameters
        ----------
        family:
            A complete :class:`AnswerFamily` or a
            :class:`PartialAnswerFamily`; answered facts must be a
            subset of the pending queries and answering workers a
            subset of the current panel.  Must contain at least one
            answer.
        temper:
            When ``True`` (default), a zero-evidence answer pattern is
            absorbed by the tempered update
            (:func:`~repro.core.update.tempered_posterior`) and recorded
            as a ``tempered_update`` fault event instead of raising
            :class:`~repro.core.update.InconsistentEvidenceError`.
        fault_events:
            Incidents observed while collecting this round; stamped with
            the round index and stored on the returned record.
        accuracy_overrides:
            Optional ``worker_id -> accuracy`` mapping.  Listed workers'
            answers are weighted with the given accuracy instead of
            their declared rate — the trust layer passes posterior
            means here so the Bayesian update trusts each expert only
            as much as their observed track record warrants.  Workers
            not listed use their declared accuracy; ids without answers
            this round are ignored.
        """
        if self._finished:
            raise SessionStateError("session is finished")
        if self._pending is None:
            raise SessionStateError(
                "no pending queries; call next_queries() first"
            )
        if isinstance(family, AnswerFamily):
            family = PartialAnswerFamily.from_family(family)
        if family.is_empty:
            raise ValueError(
                "partial answer family contains no answers; use "
                "abandon_pending() instead"
            )
        pending = set(self._pending)
        stray = set(family.answered_fact_ids) - pending
        if stray:
            raise ValueError(
                f"answers cover unpending facts {sorted(stray)}; "
                f"pending are {sorted(pending)}"
            )
        unknown = [
            worker_id
            for worker_id in family.answered_worker_ids
            if worker_id not in self._experts
        ]
        if unknown:
            raise ValueError(
                f"answers from workers outside the panel: {unknown}"
            )
        events = [
            event.stamped(self._round_index) for event in fault_events
        ]
        with OBS.phase("update"):
            self._apply_partial(
                family, temper=temper, events=events,
                accuracy_overrides=accuracy_overrides,
            )
        cost = self._budget.charge_family(family)
        record = self._record(
            self._round_index, self._pending, cost, tuple(events)
        )
        self.history.append(record)
        self._round_index += 1
        self._pending = None
        return record

    def _apply_partial(
        self,
        family: PartialAnswerFamily,
        temper: bool,
        events: list[FaultEvent],
        accuracy_overrides: Mapping[str, float] | None = None,
    ) -> None:
        """Stage per-worker Lemma-3 updates per group, then commit.

        Updates are staged on copies (see :func:`stage_partial_updates`)
        so a raised :class:`InconsistentEvidenceError` (``temper=False``)
        leaves the session belief untouched.
        """
        if self._update_engine is not None:
            updated_groups, tempered = self._update_engine.apply_partial(
                self._belief,
                family,
                temper=temper,
                round_index=self._round_index,
                accuracy_overrides=accuracy_overrides,
            )
            events.extend(tempered)
            self._invalidate(updated_groups)
            return
        staged, tempered = stage_partial_updates(
            self._belief,
            family,
            temper=temper,
            round_index=self._round_index,
            accuracy_overrides=accuracy_overrides,
        )
        events.extend(event for _key, event in tempered)
        for group_index, updated in staged.items():
            self._belief.replace_group(group_index, updated)
        self._invalidate(staged.keys())

    def _invalidate(self, group_indices) -> None:
        # Release the selector's cached entropies for the groups this
        # round actually changed; untouched groups keep their entries,
        # so the next selection pass costs O(changed), not O(N).
        invalidate = getattr(self._selector, "invalidate_groups", None)
        if callable(invalidate):
            invalidate(group_indices)

    def add_groups(
        self,
        states: Sequence[BeliefState],
        ground_truth: Mapping[int, bool] | None = None,
    ) -> list[int]:
        """Grow the campaign's belief with newly formed groups.

        The streaming runtime seals task groups as their preliminary
        votes arrive; each sealed group joins the live belief here and
        becomes selectable from the next round on.  Existing group
        indices — and therefore the selector's per-group caches — are
        untouched.  A session that had finished because no remaining
        fact offered positive gain is revived: the fresh groups are new
        work (the next ``next_queries`` re-checks affordability, so a
        genuinely exhausted budget finishes it again immediately).
        """
        if self._pending is not None:
            raise SessionStateError(
                "cannot add groups while answers are pending"
            )
        indices = [self._belief.add_group(state) for state in states]
        if ground_truth:
            if self._ground_truth is None:
                self._ground_truth = {}
            for fact_id in ground_truth:
                self._ground_truth[int(fact_id)] = bool(
                    ground_truth[fact_id]
                )
        if indices and self._finished:
            self._finished = False
        return indices

    def apply_out_of_band(
        self, answer_set: AnswerSet
    ) -> list[FaultEvent]:
        """Fold a late, out-of-round answer set in with tempering.

        Streamed preliminary labels that arrive after their group was
        sealed (but inside the straggler window) still carry evidence;
        they are applied between checking rounds with the *tempered*
        update only — a contradictory straggler degrades gracefully
        instead of raising.  No budget is charged: the checking budget
        ``B`` counts expert answers, and these are preliminary-tier
        votes.  Returns one ``late_admit`` event per touched group.
        """
        if self._pending is not None:
            raise SessionStateError(
                "cannot apply out-of-band answers while a round is "
                "pending"
            )
        by_group: dict[int, dict[int, bool]] = {}
        for fact_id, answer in answer_set.answers.items():
            group_index = self._belief.group_index_of(fact_id)
            by_group.setdefault(group_index, {})[fact_id] = answer
        events: list[FaultEvent] = []
        for group_index in sorted(by_group):
            answers = by_group[group_index]
            sub = AnswerSet(worker=answer_set.worker, answers=answers)
            updated, tempered = tempered_update_with_answer_set(
                self._belief[group_index], sub
            )
            self._belief.replace_group(group_index, updated)
            events.append(
                FaultEvent(
                    kind="late_admit",
                    round_index=self._round_index,
                    worker_id=answer_set.worker.worker_id,
                    fact_ids=tuple(sorted(answers)),
                    detail=(
                        "late stream event applied with tempering"
                        + (" (evidence floored)" if tempered else "")
                    ),
                )
            )
        self._invalidate(by_group.keys())
        return events

    def replace_experts(self, experts: Crowd) -> None:
        """Swap the checking panel (worker reassignment).

        Subsequent selection, affordability checks and full-round
        charging use the new panel.  Pending queries stay pending — the
        resilient runtime swaps panels precisely to retry a round that
        the old panel failed to answer.
        """
        if len(experts) == 0:
            raise ValueError("the expert crowd CE must not be empty")
        self._experts = experts
        self._applier = HierarchicalCrowdsourcing(
            experts=experts, selector=self._selector, k=self._k,
            cost_model=self._budget.cost_model,
        )

    def abandon_pending(self) -> None:
        """Drop the pending query set without charging the budget
        (e.g. the platform failed to collect answers in time)."""
        if self._pending is None:
            raise SessionStateError("no pending queries to abandon")
        self._pending = None
        # Refund a ledger-backed tracker's open reservation in full.
        release = getattr(self._budget, "release_pending", None)
        if callable(release):
            release()

    def final_labels(self) -> dict[int, bool]:
        """MAP labels of the current belief (paper Eq. 20)."""
        return self._belief.map_labels()

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def to_checkpoint(self) -> dict:
        """JSON-compatible snapshot of the session's durable state.

        Captures the belief, budget accounting, pending queries and
        history.  Behavioral components (the expert crowd, selector and
        cost model) are supplied again at restore time — they are code,
        not state.
        """
        from ..core.serialization import (
            FORMAT_VERSION,
            factored_belief_to_dict,
            round_record_to_dict,
        )

        return {
            "version": FORMAT_VERSION,
            "belief": factored_belief_to_dict(self._belief),
            "budget_total": self._budget.total,
            "budget_spent": self._budget.spent,
            "k": self._k,
            "round_index": self._round_index,
            "pending": list(self._pending) if self._pending else None,
            "finished": self._finished,
            "ground_truth": (
                {str(key): value for key, value in self._ground_truth.items()}
                if self._ground_truth is not None
                else None
            ),
            "history": [
                round_record_to_dict(record) for record in self.history
            ],
        }

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict,
        experts: Crowd,
        selector: Selector | None = None,
        cost_model: CostModel | None = None,
        update_engine=None,
        budget_tracker: "CheckingBudget | None" = None,
    ) -> "OnlineCheckingSession":
        """Rebuild a session from :meth:`to_checkpoint` output.

        The caller provides the expert crowd (and optionally the
        selector / cost model / update engine / budget tracker) that
        were in use; pending queries and spent budget are restored
        exactly.  A supplied ``budget_tracker`` must carry the
        checkpoint's total.
        """
        from ..core.serialization import (
            SerializationError,
            check_version,
            factored_belief_from_dict,
            round_record_from_dict,
        )

        check_version(payload)
        try:
            belief = factored_belief_from_dict(payload["belief"])
            ground_truth = payload.get("ground_truth")
            if ground_truth is not None:
                ground_truth = {
                    int(key): bool(value)
                    for key, value in ground_truth.items()
                }
            if budget_tracker is not None:
                if budget_tracker.total != float(payload["budget_total"]):
                    raise SerializationError(
                        f"budget tracker total {budget_tracker.total} != "
                        f"checkpoint total {payload['budget_total']}"
                    )
                budget: "float | CheckingBudget" = budget_tracker
            else:
                budget = float(payload["budget_total"])
            session = cls(
                belief,
                experts,
                budget=budget,
                selector=selector,
                k=int(payload["k"]),
                cost_model=cost_model,
                ground_truth=ground_truth,
                update_engine=update_engine,
            )
            session._budget.restore_spent(float(payload["budget_spent"]))
            session._round_index = int(payload["round_index"])
            pending = payload.get("pending")
            session._pending = tuple(pending) if pending else None
            session._finished = bool(payload.get("finished", False))
            session.history = [
                round_record_from_dict(record)
                for record in payload["history"]
            ]
        except (KeyError, TypeError, ValueError) as error:
            if isinstance(error, SerializationError):
                raise
            raise SerializationError(
                f"malformed session checkpoint: {error}"
            ) from error
        return session

    def _record(
        self,
        round_index: int,
        queries: tuple[int, ...],
        cost: float,
        fault_events: tuple[FaultEvent, ...] = (),
    ) -> RoundRecord:
        from ..core.hc import labeling_accuracy, total_quality

        return RoundRecord(
            round_index=round_index,
            query_fact_ids=queries,
            cost=cost,
            budget_spent=self._budget.spent,
            quality=total_quality(self._belief),
            accuracy=(
                labeling_accuracy(self._belief, self._ground_truth)
                if self._ground_truth is not None
                else None
            ),
            fault_events=fault_events,
        )
