"""Fault injection for the checking loop (chaos testing the runtime).

The paper's simulation assumes every expert answers every query
instantly and honestly.  Real crowds do not: workers no-show, the
platform times out, spammers answer uniformly at random, compromised
accounts flip their answers, and busy workers skip half the queries.
:class:`FaultyExpertPanel` wraps any answer source with a seeded,
composable model of exactly those failure modes, so the resilient
runtime (:mod:`repro.simulation.resilient`) can be exercised — and
regression-tested — against crowds that misbehave at configurable
rates.

Every injected fault is recorded as a
:class:`~repro.core.incidents.FaultEvent`; drain them with
:meth:`FaultyExpertPanel.drain_events` after each collection attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.answers import AnswerFamily, AnswerSet, PartialAnswerFamily
from ..core.incidents import FaultEvent
from ..core.workers import Crowd


class AnswerCollectionTimeout(RuntimeError):
    """The platform failed to collect any answers in time (transient)."""


def parse_rate_spec(spec: str, allowed: Sequence[str]) -> dict[str, float]:
    """Parse a ``name=rate,name=rate`` CLI spec into a rate dict.

    Shared by :meth:`FaultModel.parse` (crowd faults) and
    :meth:`repro.engine.chaos.ChaosPlan.parse` (transport faults), so
    both CLI surfaces speak the same mini-language.
    """
    allowed_set = set(allowed)
    rates: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in allowed_set:
            raise ValueError(
                f"unknown fault {name!r}; expected one of "
                f"{sorted(allowed_set)}"
            )
        try:
            rates[name] = float(value)
        except ValueError:
            raise ValueError(f"bad rate for {name!r}: {value!r}") from None
    return rates


@dataclass(frozen=True)
class FaultModel:
    """Seeded configuration of crowd failure rates.

    All rates are probabilities per checking round (``partial`` is per
    answered fact).  Per round each worker independently draws one
    behavior — no-show, spam, adversarial, or honest — with the given
    rates; ``timeout`` is drawn once per collection attempt and aborts
    the whole attempt with :class:`AnswerCollectionTimeout`.

    Parameters
    ----------
    no_show:
        Probability a worker returns nothing this round.
    timeout:
        Probability the whole collection attempt times out.
    spam:
        Probability a worker answers uniformly at random.
    adversarial:
        Probability a worker's answers are flipped.
    partial:
        Probability each individual answer of a responding worker is
        dropped (models workers skipping queries).
    seed:
        Seed of the fault RNG (separate from the answer RNG, so the
        same crowd answers can be replayed under different faults).
    per_worker:
        Optional ``worker_id -> FaultModel`` overrides; a listed
        worker's ``no_show``/``spam``/``adversarial``/``partial`` rates
        replace the global ones (``timeout`` and ``seed`` of overrides
        are ignored — they are attempt- and panel-level knobs).
    """

    no_show: float = 0.0
    timeout: float = 0.0
    spam: float = 0.0
    adversarial: float = 0.0
    partial: float = 0.0
    seed: int = 0
    per_worker: Mapping[str, "FaultModel"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("no_show", "timeout", "spam", "adversarial", "partial"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} rate must lie in [0, 1], got {rate}"
                )
        if self.no_show + self.spam + self.adversarial > 1.0 + 1e-12:
            raise ValueError(
                "no_show + spam + adversarial must not exceed 1 "
                "(they are mutually exclusive per-round behaviors)"
            )
        object.__setattr__(self, "per_worker", dict(self.per_worker))

    def rates_for(self, worker_id: str) -> "FaultModel":
        """The effective fault model for one worker."""
        return self.per_worker.get(worker_id, self)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultModel":
        """Build a model from a ``name=rate,name=rate`` CLI spec.

        Example: ``"no_show=0.1,spam=0.05,timeout=0.2"``.
        """
        rates = parse_rate_spec(
            spec, ("no_show", "timeout", "spam", "adversarial", "partial")
        )
        return cls(seed=seed, **rates)


class FaultyExpertPanel:
    """Wrap an answer source with seeded fault injection.

    The wrapped source is asked for the full, honest answer family;
    faults are then applied on top: the whole attempt may time out,
    workers may no-show, spam, answer adversarially, or drop individual
    answers.  The result is a
    :class:`~repro.core.answers.PartialAnswerFamily` (or the unchanged
    :class:`~repro.core.answers.AnswerFamily` when no fault fired, so a
    zero-rate panel is a drop-in replacement for its inner source).

    Parameters
    ----------
    inner:
        Any answer source (``collect(query_fact_ids, experts)``).
    fault_model:
        The failure rates; its ``seed`` seeds the fault RNG.
    rng:
        Optional explicit generator/seed overriding ``fault_model.seed``.
    """

    def __init__(
        self,
        inner,
        fault_model: FaultModel,
        rng: np.random.Generator | int | None = None,
    ):
        self._inner = inner
        self._model = fault_model
        self._rng = np.random.default_rng(
            fault_model.seed if rng is None else rng
        )
        self._events: list[FaultEvent] = []

    @property
    def fault_model(self) -> FaultModel:
        return self._model

    @property
    def inner(self):
        return self._inner

    def drain_events(self) -> list[FaultEvent]:
        """Return and clear the fault events of recent collections."""
        events, self._events = self._events, []
        return events

    # ------------------------------------------------------------------
    # state (journal support)
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """JSON-compatible RNG state (fault RNG + inner source state)."""
        state: dict = {"rng": self._rng.bit_generator.state}
        inner_get = getattr(self._inner, "get_state", None)
        if callable(inner_get):
            state["inner"] = inner_get()
        return state

    def set_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        inner_set = getattr(self._inner, "set_state", None)
        if callable(inner_set) and "inner" in state:
            inner_set(state["inner"])

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily | PartialAnswerFamily:
        """Collect answers with faults injected.

        Raises
        ------
        AnswerCollectionTimeout
            With probability ``fault_model.timeout`` per call.
        """
        if self._rng.random() < self._model.timeout:
            self._events.append(
                FaultEvent(
                    kind="timeout",
                    fact_ids=tuple(query_fact_ids),
                    detail="simulated platform timeout",
                )
            )
            raise AnswerCollectionTimeout(
                f"collection of {len(query_fact_ids)} queries from "
                f"{len(experts)} experts timed out (injected)"
            )
        family = self._inner.collect(query_fact_ids, experts)
        survivors: list[AnswerSet] = []
        faulted = False
        for answer_set in family:
            worker = answer_set.worker
            rates = self._model.rates_for(worker.worker_id)
            draw = self._rng.random()
            if draw < rates.no_show:
                faulted = True
                self._events.append(
                    FaultEvent(
                        kind="no_show",
                        worker_id=worker.worker_id,
                        fact_ids=tuple(query_fact_ids),
                    )
                )
                continue
            answers = dict(answer_set.answers)
            if draw < rates.no_show + rates.spam:
                faulted = True
                answers = {
                    fact_id: bool(self._rng.random() < 0.5)
                    for fact_id in answers
                }
                self._events.append(
                    FaultEvent(
                        kind="spam",
                        worker_id=worker.worker_id,
                        fact_ids=tuple(query_fact_ids),
                        detail="uniform-random answers",
                    )
                )
            elif draw < rates.no_show + rates.spam + rates.adversarial:
                faulted = True
                answers = {
                    fact_id: not answer for fact_id, answer in answers.items()
                }
                self._events.append(
                    FaultEvent(
                        kind="adversarial",
                        worker_id=worker.worker_id,
                        fact_ids=tuple(query_fact_ids),
                        detail="answers flipped",
                    )
                )
            if rates.partial > 0.0 and answers:
                kept = {
                    fact_id: answer
                    for fact_id, answer in answers.items()
                    if self._rng.random() >= rates.partial
                }
                if len(kept) < len(answers):
                    faulted = True
                    dropped = tuple(
                        fact_id for fact_id in answers if fact_id not in kept
                    )
                    kind = "partial" if kept else "no_show"
                    self._events.append(
                        FaultEvent(
                            kind=kind,
                            worker_id=worker.worker_id,
                            fact_ids=dropped,
                            detail=f"dropped {len(dropped)} of "
                                   f"{len(answers)} answers",
                        )
                    )
                answers = kept
            if answers:
                survivors.append(AnswerSet(worker=worker, answers=answers))
        if not faulted:
            return family
        return PartialAnswerFamily(
            intended_query_fact_ids=tuple(query_fact_ids),
            intended_worker_ids=experts.worker_ids,
            answer_sets=tuple(survivors),
        )
