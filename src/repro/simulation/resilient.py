"""Fault-tolerant campaign runtime over the sans-IO checking session.

:class:`~repro.simulation.online.OnlineCheckingSession` assumes the
caller always manages to produce an answer family.  Against a real (or
fault-injected) crowd, collection fails in every way imaginable; this
module keeps the checking loop alive through all of it:

* **retry with exponential backoff + jitter** when a collection attempt
  times out or comes back empty (:class:`RetryPolicy`);
* **reassignment** to fresh reserve experts after a panel repeatedly
  fails, with the budget charged through the same
  :class:`~repro.core.budget.CostModel`;
* **partial acceptance**: whatever subset of workers/answers arrives is
  applied with exact Lemma-3 conditioning on the responders, and only
  the received answers are charged;
* **graceful degradation** on contradictory evidence — the tempered
  update re-smooths the posterior instead of raising
  :class:`~repro.core.update.InconsistentEvidenceError`;
* **crash-safe checkpointing**: an append-only JSONL journal captures
  belief, budget, pending queries, retry state and RNG states after
  every state transition, and :meth:`ResilientCheckingSession.resume`
  restores mid-round — byte-identical to an uninterrupted run;
* **online trust supervision** (opt-in via ``trust_policy``): a
  :class:`~repro.core.trust.TrustSupervisor` maintains per-worker Beta
  posteriors over accuracy fed by seeded gold probes and MAP-agreement,
  trust-weights the Bayesian update, and drives per-worker circuit
  breakers that quarantine drifting experts through the reassignment
  path and re-admit them after gold-probe probation.  Supervisor state
  (posteriors, breakers, pending probes, probe RNG) is journaled, so
  resume stays byte-identical with trust enabled.

Every survived incident is a :class:`~repro.core.incidents.FaultEvent`
in the session's ``incidents`` log and on the owning round's record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.answers import AnswerFamily, AnswerSet, PartialAnswerFamily
from ..core.budget import CheckingBudget, CostModel
from ..core.hc import RunResult
from ..core.incidents import FaultEvent
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import Selector
from ..core.serialization import (
    FORMAT_VERSION,
    SerializationError,
    append_journal_record,
    crowd_from_dict,
    crowd_to_dict,
    fault_event_from_dict,
    fault_event_to_dict,
    read_journal,
    trim_journal_to_last_checkpoint,
)
from ..core.trust import TrustPolicy, TrustReport, TrustSupervisor
from ..core.workers import Crowd
from ..obs import OBS
from .faults import AnswerCollectionTimeout
from .online import OnlineCheckingSession


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving a round up.

    Parameters
    ----------
    max_attempts:
        Collection attempts per panel per round (>= 1).
    max_reassignments:
        Panel swaps allowed per round once a panel has burned through
        its attempts (0 disables reassignment).
    base_delay, multiplier, max_delay:
        Exponential backoff: the wait before attempt ``n+1`` is
        ``min(base_delay * multiplier**n, max_delay)`` seconds.
    jitter:
        Fractional +/- jitter applied to each delay (0.25 == +/-25%),
        decorrelating retry storms across concurrent campaigns.
    """

    max_attempts: int = 4
    max_reassignments: int = 1
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.max_reassignments < 0:
            raise ValueError("max_reassignments must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        delay = min(
            self.base_delay * self.multiplier ** attempt, self.max_delay
        )
        if self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(delay, 0.0)


@dataclass
class ResilientRunResult(RunResult):
    """A :class:`~repro.core.hc.RunResult` plus the incident log.

    ``halted`` is ``True`` when the session gave up on a query set (all
    retries and reassignments exhausted) before the budget ran out.
    """

    incidents: list[FaultEvent] = field(default_factory=list)
    halted: bool = False
    #: Trust-supervision outcome, ``None`` when supervision was off.
    trust: TrustReport | None = None


class ResilientCheckingSession:
    """Drive a checking campaign to completion through crowd faults.

    Parameters
    ----------
    belief, experts, budget, selector, k, cost_model, ground_truth:
        As in :class:`~repro.simulation.online.OnlineCheckingSession`;
        selection defaults to the lazy-greedy engine
        (:class:`~repro.core.selection.LazyGreedySelector`), which
        carries its gain cache across rounds — after every committed
        round the inner session invalidates exactly the updated groups,
        so steady-state selection work is proportional to the groups
        the previous round touched, not the whole fact set.
    retry_policy:
        Retry/backoff/reassignment knobs; defaults to
        ``RetryPolicy()``.
    reserve_experts:
        Optional pool of fresh workers to swap in when a panel
        repeatedly fails; their answers are charged through the same
        cost model (unlisted workers cost ``default_cost``).
    journal_path:
        When given, every state transition is appended to this JSONL
        journal and :meth:`resume` can restore the session mid-round
        after a crash.
    trust_policy:
        When given, an online :class:`~repro.core.trust.TrustSupervisor`
        tracks every panel member's accuracy posterior, injects gold
        probes, trust-weights the Bayesian update, and quarantines /
        re-admits workers through per-worker circuit breakers.  Probe
        answers are an operational QA cost: they are stripped before the
        belief update and are *not* charged against the checking budget
        ``B``.
    gold_facts:
        ``fact_id -> truth`` probe pool for the trust layer (see
        :func:`~repro.core.trust.select_gold_probes`).  Ignored without
        ``trust_policy``; an empty pool disables probing and probation,
        leaving trust to run on MAP agreement alone.
    seed:
        Seed of the session RNG (backoff jitter).
    sleep:
        Callable invoked with each backoff delay.  ``None`` (default)
        records the delay as a ``backoff`` event without actually
        waiting — right for simulation; live deployments pass
        ``time.sleep``.
    journal_metadata:
        Optional extra record — or sequence of records — appended
        between the journal's header and its first checkpoint (the
        parallel engine stores its shard layout here; the campaign
        service prepends its tenant identity).  Each must carry a
        ``"kind"`` field; ignored without ``journal_path``.
    journal_header:
        ``False`` when the caller already initialized the journal file
        (header, metadata, its own bootstrap records) and will trigger
        the first checkpoint itself — the streaming runtime does this
        so its stream-offset extras ride on every checkpoint from the
        very first one.  Defaults to ``True`` (write header, metadata
        and an initial checkpoint on construction).
    checkpoint_extras:
        Optional zero-argument callable returning a JSON-serializable
        dict; when set, every checkpoint record carries its result
        under the ``"stream"`` key.  The streaming runtime uses this to
        persist its event-log offset, watermark and dedup state
        atomically with the session state.
    """

    def __init__(
        self,
        belief: FactoredBelief,
        experts: Crowd,
        budget: "float | CheckingBudget",
        *,
        selector: Selector | None = None,
        k: int = 1,
        cost_model: CostModel | None = None,
        ground_truth: Mapping[int, bool] | None = None,
        retry_policy: RetryPolicy | None = None,
        reserve_experts: Crowd | None = None,
        journal_path: str | Path | None = None,
        trust_policy: TrustPolicy | None = None,
        gold_facts: Mapping[int, bool] | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
        update_engine=None,
        journal_metadata: dict | Sequence[dict] | None = None,
        journal_header: bool = True,
        checkpoint_extras: Callable[[], dict] | None = None,
    ):
        inner = OnlineCheckingSession(
            belief,
            experts,
            budget,
            selector=selector,
            k=k,
            cost_model=cost_model,
            ground_truth=ground_truth,
            update_engine=update_engine,
        )
        supervisor = (
            TrustSupervisor(experts, policy=trust_policy, gold=gold_facts)
            if trust_policy is not None
            else None
        )
        self._init_common(
            inner,
            cost_model=cost_model,
            retry_policy=retry_policy,
            reserve=list(reserve_experts) if reserve_experts else [],
            journal_path=journal_path,
            rng=np.random.default_rng(seed),
            sleep=sleep,
            supervisor=supervisor,
            checkpoint_extras=checkpoint_extras,
        )
        if self._journal_path is not None and journal_header:
            append_journal_record(
                self._journal_path,
                {
                    "kind": "header",
                    "version": FORMAT_VERSION,
                    "budget_total": (
                        float(budget.total)
                        if isinstance(budget, CheckingBudget)
                        else float(budget)
                    ),
                    "k": int(k),
                },
            )
            if journal_metadata is not None:
                # Caller-provided runtime metadata (e.g. the parallel
                # engine's shard layout, the service's tenant record).
                # It sits between the header and the first checkpoint so
                # resume's trim-to-last-checkpoint can never drop it.
                metadata_records = (
                    [journal_metadata]
                    if isinstance(journal_metadata, Mapping)
                    else list(journal_metadata)
                )
                for metadata_record in metadata_records:
                    append_journal_record(
                        self._journal_path, metadata_record
                    )
            self._journal_checkpoint(None)

    def _init_common(
        self,
        inner: OnlineCheckingSession,
        *,
        cost_model: CostModel | None,
        retry_policy: RetryPolicy | None,
        reserve: list,
        journal_path: str | Path | None,
        rng: np.random.Generator,
        sleep: Callable[[float], None] | None,
        supervisor: TrustSupervisor | None = None,
        checkpoint_extras: Callable[[], dict] | None = None,
    ) -> None:
        self._inner = inner
        self._supervisor = supervisor
        self._checkpoint_extras = checkpoint_extras
        self._cost_model = cost_model or CostModel()
        self._retry = retry_policy or RetryPolicy()
        self._reserve = reserve
        self._journal_path = (
            Path(journal_path) if journal_path is not None else None
        )
        self._rng = rng
        self._sleep = sleep
        self._attempt = 0
        self._reassignments_used = 0
        self._round_events: list[FaultEvent] = []
        self._halted = False
        self._pending_source_state: dict | None = None
        #: Every incident survived so far, in order of occurrence.
        self.incidents: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # delegated accessors
    # ------------------------------------------------------------------

    @property
    def belief(self) -> FactoredBelief:
        return self._inner.belief

    @property
    def experts(self) -> Crowd:
        return self._inner.experts

    @property
    def remaining_budget(self) -> float:
        return self._inner.remaining_budget

    @property
    def spent_budget(self) -> float:
        return self._inner.spent_budget

    @property
    def history(self):
        return self._inner.history

    @property
    def is_finished(self) -> bool:
        return self._inner.is_finished or self._halted

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def pending_queries(self) -> tuple[int, ...] | None:
        return self._inner.pending_queries

    @property
    def budget_tracker(self) -> CheckingBudget:
        """The session's budget object (a
        :class:`~repro.engine.ledger.LedgerBudget` on the parallel
        path).  Abort paths close it to release an orphaned
        reservation."""
        return self._inner.budget

    def final_labels(self) -> dict[int, bool]:
        return self._inner.final_labels()

    # ------------------------------------------------------------------
    # the resilient loop
    # ------------------------------------------------------------------

    def run(self, answer_source, max_rounds: int | None = None) -> ResilientRunResult:
        """Run the checking loop until the budget is exhausted.

        Unlike the strict loop, *no* crowd behavior raises out of this
        method: timeouts are retried with backoff, failed panels are
        reassigned, partial answers are accepted and charged pro rata,
        contradictory answers are tempered, and a permanently
        unanswerable query set halts the session gracefully with an
        ``abandoned`` incident instead of an exception.
        """
        if self._pending_source_state is not None:
            set_state = getattr(answer_source, "set_state", None)
            if callable(set_state):
                set_state(self._pending_source_state)
            self._pending_source_state = None
        rounds = 0
        while not self._halted and (
            max_rounds is None or rounds < max_rounds
        ):
            if self._inner.pending_queries is None:
                queries = self._inner.next_queries()
                if queries is None:
                    break
                self._attempt = 0
                self._reassignments_used = 0
                self._round_events = []
                if self._supervisor is not None:
                    # chosen before the round-start checkpoint so a
                    # resumed session replays the exact same probes
                    self._supervisor.select_probes(exclude=queries)
                self._journal_checkpoint(answer_source)
            else:
                # resumed mid-round: replay the journaled pending set
                queries = list(self._inner.pending_queries)
            probes = (
                self._supervisor.select_probes(exclude=queries)
                if self._supervisor is not None
                else ()
            )
            with OBS.phase("collect"):
                family = self._collect_with_retry(
                    answer_source, queries, probes
                )
            if family is None:
                # the round never completed; its collection incidents
                # would otherwise vanish with the abandoned record
                self.incidents.extend(self._round_events)
                self._round_events = []
                self._note(
                    FaultEvent(
                        kind="abandoned",
                        round_index=self._inner.round_index,
                        attempt=self._attempt,
                        fact_ids=tuple(queries),
                        detail="all retries and reassignments exhausted",
                    ),
                    attach_to_round=False,
                )
                self._inner.abandon_pending()
                if self._supervisor is not None:
                    self._supervisor.clear_probes()
                self._halted = True
                self._journal_checkpoint(answer_source)
                break
            before = len(self._round_events)
            record = self._inner.submit_partial(
                family,
                temper=True,
                fault_events=self._round_events,
                accuracy_overrides=(
                    self._supervisor.accuracy_overrides()
                    if self._supervisor is not None
                    else None
                ),
            )
            self.incidents.extend(record.fault_events[:before])
            for event in record.fault_events[before:]:
                # tempered updates surfaced by submit_partial
                self._note(event, attach_to_round=False)
            self._round_events = []
            if self._supervisor is not None:
                self._trust_post_round(answer_source, record, family)
            self._journal_checkpoint(answer_source)
            rounds += 1
        return self.result()

    def result(self) -> ResilientRunResult:
        """The campaign outcome so far."""
        return ResilientRunResult(
            belief=self._inner.belief,
            history=list(self._inner.history),
            incidents=list(self.incidents),
            halted=self._halted,
            trust=(
                self._supervisor.report()
                if self._supervisor is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # streaming integration: group growth and expert churn
    # ------------------------------------------------------------------

    def add_groups(
        self,
        states: Sequence[BeliefState],
        ground_truth: Mapping[int, bool] | None = None,
    ) -> list[int]:
        """Grow the belief with newly sealed streaming groups.

        Delegates to
        :meth:`~repro.simulation.online.OnlineCheckingSession.add_groups`.
        A session halted on an abandoned query set stays halted (that
        query set is still unanswerable), but one that merely ran out
        of selectable work is revived by the inner call.
        """
        return self._inner.add_groups(states, ground_truth)

    def note_incident(self, event: FaultEvent) -> None:
        """Record an externally observed incident (journaled; not
        attached to any round) — the streaming runtime's hook for
        ``group_sealed``/``late_drop`` events it detects itself."""
        self._note(event, attach_to_round=False)

    def apply_out_of_band(self, answer_set: AnswerSet) -> None:
        """Fold a late streamed answer set in with tempering, noting
        one ``late_admit`` incident per touched group."""
        for event in self._inner.apply_out_of_band(answer_set):
            self._note(event, attach_to_round=False)

    def adopt_expert(self, worker) -> bool:
        """Admit a worker who joined the stream onto the checking panel.

        Registered with the trust supervisor (fresh joiners start on the
        policy prior; rejoining workers keep their earlier posterior),
        so churned-in experts are immediately under CircuitBreaker/CUSUM
        supervision.  Returns ``False`` when the worker is already on
        the panel.
        """
        panel = list(self._inner.experts)
        if any(member.worker_id == worker.worker_id for member in panel):
            return False
        if self._supervisor is not None:
            self._supervisor.register(worker)
        self._inner.replace_experts(Crowd(panel + [worker]))
        self._note(
            FaultEvent(
                kind="worker_join",
                round_index=self._inner.round_index,
                worker_id=worker.worker_id,
                detail=f"stream join (accuracy {worker.accuracy:.3f})",
            ),
            attach_to_round=False,
        )
        return True

    def retire_expert(self, worker_id: str) -> bool:
        """Drop a departed worker from the panel and the reserve pool.

        Departure is not misbehavior: the worker is removed outright
        rather than quarantined (quarantine would schedule probation
        probes for someone who is gone).  Their trust posterior is kept,
        so a later rejoin resumes supervision where it left off.  The
        last panel member is retained — a checking campaign cannot run
        against an empty crowd — with the retention noted.
        """
        before = len(self._reserve)
        self._reserve = [
            member for member in self._reserve
            if member.worker_id != worker_id
        ]
        removed_reserve = len(self._reserve) != before
        panel = list(self._inner.experts)
        on_panel = any(
            member.worker_id == worker_id for member in panel
        )
        if not on_panel:
            if removed_reserve:
                self._note(
                    FaultEvent(
                        kind="worker_leave",
                        round_index=self._inner.round_index,
                        worker_id=worker_id,
                        detail="stream leave (was in reserve pool)",
                    ),
                    attach_to_round=False,
                )
            return removed_reserve
        remaining = [
            member for member in panel if member.worker_id != worker_id
        ]
        if not remaining:
            self._note(
                FaultEvent(
                    kind="worker_leave",
                    round_index=self._inner.round_index,
                    worker_id=worker_id,
                    detail=(
                        "stream leave ignored: last panel member "
                        "retained to keep the crowd non-empty"
                    ),
                ),
                attach_to_round=False,
            )
            return False
        self._inner.replace_experts(Crowd(remaining))
        self._note(
            FaultEvent(
                kind="worker_leave",
                round_index=self._inner.round_index,
                worker_id=worker_id,
                detail="stream leave (removed from panel)",
            ),
            attach_to_round=False,
        )
        return True

    # ------------------------------------------------------------------
    # collection with retry / backoff / reassignment
    # ------------------------------------------------------------------

    def _collect_with_retry(
        self,
        answer_source,
        queries: list[int],
        probes: Sequence[int] = (),
    ) -> PartialAnswerFamily | None:
        """Collect answers for one round, surviving transient failures.

        When the trust layer scheduled gold ``probes``, they ride along
        in the same collection request (indistinguishable from campaign
        queries to the workers), are scored against the gold truth, and
        are stripped back out before the family reaches the budget
        accounting and the Bayesian update.

        Returns ``None`` only when every retry against every available
        panel produced nothing.
        """
        collect_queries = list(queries) + [
            fact_id for fact_id in probes if fact_id not in queries
        ]
        while True:
            attempt = self._attempt
            failure_detail = ""
            partial: PartialAnswerFamily | None = None
            try:
                collected = answer_source.collect(
                    collect_queries, self._inner.experts
                )
            except AnswerCollectionTimeout as error:
                self._drain_source_events(answer_source, attempt)
                failure_detail = str(error)
            else:
                self._drain_source_events(answer_source, attempt)
                partial = self._coerce(collected, collect_queries)
                partial, probe_answers = self._strip_probes(partial, probes)
                partial = self._trim_to_budget(partial)
                if partial.num_answers > 0:
                    self._score_probes(probe_answers)
                    return partial
                self._note(
                    FaultEvent(
                        kind="empty_round",
                        round_index=self._inner.round_index,
                        attempt=attempt,
                        fact_ids=tuple(queries),
                        detail="attempt produced zero answers",
                    )
                )
            self._attempt += 1
            if self._attempt >= self._retry.max_attempts:
                if (
                    self._reassignments_used < self._retry.max_reassignments
                    and self._reserve
                ):
                    self._reassign(queries)
                    self._attempt = 0
                    self._reassignments_used += 1
                    self._journal_checkpoint(answer_source)
                    continue
                # no checkpoint here: the caller's abandoned path notes
                # the outcome and checkpoints the halted state
                return None
            delay = self._retry.delay_for(self._attempt - 1, self._rng)
            self._note(
                FaultEvent(
                    kind="backoff",
                    round_index=self._inner.round_index,
                    attempt=self._attempt,
                    fact_ids=tuple(queries),
                    detail=(
                        f"waiting {delay:.3f}s before attempt "
                        f"{self._attempt + 1}"
                        + (f" ({failure_detail})" if failure_detail else "")
                    ),
                )
            )
            # checkpoint only after the backoff delay was drawn and the
            # event noted, so the snapshot (incidents + round_events +
            # RNG state) is consistent: a resumed replay starts exactly
            # at the next collection attempt and regenerates every
            # journal record that followed this checkpoint
            self._journal_checkpoint(answer_source)
            if self._sleep is not None and delay > 0.0:
                self._sleep(delay)

    def _strip_probes(
        self, partial: PartialAnswerFamily, probes: Sequence[int]
    ) -> tuple[PartialAnswerFamily, dict[str, dict[int, bool]]]:
        """Split gold-probe answers out of a collected family.

        The returned family covers only the campaign queries (probe
        answers must never reach the budget accounting or the belief
        update); the mapping holds each worker's probe answers for
        trust scoring.
        """
        if not probes:
            return partial, {}
        probe_set = set(probes)
        kept: list[AnswerSet] = []
        probe_answers: dict[str, dict[int, bool]] = {}
        for answer_set in partial.answer_sets:
            regular = {
                fact_id: answer
                for fact_id, answer in answer_set.answers.items()
                if fact_id not in probe_set
            }
            probed = {
                fact_id: answer
                for fact_id, answer in answer_set.answers.items()
                if fact_id in probe_set
            }
            if probed:
                probe_answers[answer_set.worker.worker_id] = probed
            if regular:
                kept.append(
                    AnswerSet(worker=answer_set.worker, answers=regular)
                )
        stripped = PartialAnswerFamily(
            intended_query_fact_ids=tuple(
                fact_id
                for fact_id in partial.intended_query_fact_ids
                if fact_id not in probe_set
            ),
            intended_worker_ids=partial.intended_worker_ids,
            answer_sets=tuple(kept),
        )
        return stripped, probe_answers

    def _score_probes(
        self, probe_answers: Mapping[str, Mapping[int, bool]]
    ) -> None:
        """Fold gold-probe answers into trust at weight 1."""
        if self._supervisor is None or not probe_answers:
            return
        for worker_id in sorted(probe_answers):
            answers = probe_answers[worker_id]
            correct, total = self._supervisor.score_gold(worker_id, answers)
            self._note(
                FaultEvent(
                    kind="gold_probe",
                    round_index=self._inner.round_index,
                    attempt=self._attempt,
                    worker_id=worker_id,
                    fact_ids=tuple(sorted(answers)),
                    detail=f"{correct}/{total} gold probes correct",
                )
            )

    def _coerce(
        self, collected, queries: Sequence[int]
    ) -> PartialAnswerFamily:
        if isinstance(collected, PartialAnswerFamily):
            return collected
        if isinstance(collected, AnswerFamily):
            return PartialAnswerFamily.from_family(collected)
        raise TypeError(
            "answer source must return AnswerFamily or "
            f"PartialAnswerFamily, got {type(collected).__name__}"
        )

    def _trim_to_budget(
        self, partial: PartialAnswerFamily
    ) -> PartialAnswerFamily:
        """Drop answer sets (priciest first) until the family fits the
        remaining budget — reassigned workers can cost more than the
        panel the round was sized for."""
        remaining = self._inner.remaining_budget
        answer_sets = list(partial.answer_sets)
        if self._cost_model.family_cost(answer_sets) <= remaining + 1e-9:
            return partial
        answer_sets.sort(
            key=lambda answer_set: self._cost_model.answer_cost(
                answer_set.worker
            )
            * len(answer_set.answers)
        )
        dropped: list[str] = []
        while (
            answer_sets
            and self._cost_model.family_cost(answer_sets) > remaining + 1e-9
        ):
            dropped.append(answer_sets.pop().worker.worker_id)
        if dropped:
            self._note(
                FaultEvent(
                    kind="budget_clip",
                    round_index=self._inner.round_index,
                    attempt=self._attempt,
                    detail=(
                        f"dropped answers from {dropped} to fit the "
                        f"remaining budget {remaining:.2f}"
                    ),
                )
            )
        return PartialAnswerFamily(
            intended_query_fact_ids=partial.intended_query_fact_ids,
            intended_worker_ids=partial.intended_worker_ids,
            answer_sets=tuple(answer_sets),
        )

    def _reassign(self, queries: Sequence[int]) -> None:
        """Swap as many failed panel members for reserves as possible."""
        panel = list(self._inner.experts)
        take = min(len(panel), len(self._reserve))
        replacements = self._reserve[:take]
        del self._reserve[:take]
        new_panel = Crowd(replacements + panel[take:])
        if self._supervisor is not None:
            for worker in replacements:
                self._supervisor.register(worker)
        self._inner.replace_experts(new_panel)
        self._note(
            FaultEvent(
                kind="reassignment",
                round_index=self._inner.round_index,
                attempt=self._attempt,
                fact_ids=tuple(queries),
                detail=(
                    f"replaced {[worker.worker_id for worker in panel[:take]]}"
                    f" with {[worker.worker_id for worker in replacements]}"
                ),
            )
        )

    # ------------------------------------------------------------------
    # trust supervision (post-round)
    # ------------------------------------------------------------------

    def _trust_post_round(
        self, answer_source, record, family: PartialAnswerFamily
    ) -> None:
        """Advance the trust layer after a completed round.

        Folds the round's answers into every responder's posterior
        (agreement with the *post-update* MAP labels; facts in the gold
        pool against gold), ticks every circuit breaker, and acts on the
        decisions: quarantines through the reassignment path, probation
        probes for cooled-down workers, re-admission for workers that
        pass.
        """
        supervisor = self._supervisor
        assert supervisor is not None
        answers_by_worker = {
            answer_set.worker.worker_id: dict(answer_set.answers)
            for answer_set in family.answer_sets
        }
        supervisor.observe_round(answers_by_worker, self._inner.final_labels())
        supervisor.clear_probes()
        round_index = record.round_index
        decisions = supervisor.evaluate(
            round_index, self._inner.experts.worker_ids
        )
        for decision in decisions:
            if decision.kind == "drift":
                self._note(
                    FaultEvent(
                        kind="drift",
                        round_index=round_index,
                        worker_id=decision.worker_id,
                        detail=decision.reason,
                    ),
                    attach_to_round=False,
                )
            elif decision.kind == "quarantine":
                self._quarantine(decision, round_index)
            elif decision.kind == "probation":
                self._probation(answer_source, decision, round_index)

    def _quarantine(self, decision, round_index: int) -> None:
        """Pull a tripped worker from the panel, substituting a reserve."""
        supervisor = self._supervisor
        panel = list(self._inner.experts)
        worker = next(
            member for member in panel
            if member.worker_id == decision.worker_id
        )
        remaining = [
            member for member in panel
            if member.worker_id != decision.worker_id
        ]
        replacement = None
        if self._reserve:
            replacement = self._reserve.pop(0)
            supervisor.register(replacement)
            remaining.append(replacement)
        supervisor.quarantine_worker(worker)
        if not remaining:
            # Never empty the panel: the worker stays active (their
            # trust-weighted accuracy already discounts their answers)
            # while the open breaker keeps them on the probation track.
            detail = (
                f"{decision.reason} (no reserves; worker retained to "
                "keep the panel non-empty)"
            )
        else:
            self._inner.replace_experts(Crowd(remaining))
            detail = decision.reason + (
                f"; replaced by {replacement.worker_id!r}"
                if replacement is not None
                else "; no reserve available"
            )
        self._note(
            FaultEvent(
                kind="quarantine",
                round_index=round_index,
                worker_id=worker.worker_id,
                detail=detail,
            ),
            attach_to_round=False,
        )

    def _probation(self, answer_source, decision, round_index: int) -> None:
        """Send one half-open worker their gold probation probes."""
        supervisor = self._supervisor
        worker = next(
            (
                candidate
                for candidate in supervisor.quarantined_workers
                if candidate.worker_id == decision.worker_id
            ),
            None,
        )
        if worker is None:
            return
        probe_facts = supervisor.probation_probes_for(worker.worker_id)
        if not probe_facts:
            # no gold pool: probation is impossible, the worker stays
            # half-open (and benched) for the rest of the campaign
            return
        try:
            collected = answer_source.collect(
                list(probe_facts), Crowd([worker])
            )
        except AnswerCollectionTimeout as error:
            # the round is already finalized; probation incidents go
            # straight to the session log, not the (closed) round record
            self._drain_source_events(
                answer_source, attempt=0, attach_to_round=False
            )
            self._note(
                FaultEvent(
                    kind="probation",
                    round_index=round_index,
                    worker_id=worker.worker_id,
                    fact_ids=probe_facts,
                    detail=f"probation attempt timed out ({error}); "
                           "retrying next round",
                ),
                attach_to_round=False,
            )
            return
        self._drain_source_events(
            answer_source, attempt=0, attach_to_round=False
        )
        partial = self._coerce(collected, list(probe_facts))
        answers: dict[int, bool] = {}
        for answer_set in partial.answer_sets:
            if answer_set.worker.worker_id == worker.worker_id:
                answers = dict(answer_set.answers)
        verdict = supervisor.score_probation(
            worker.worker_id, answers, round_index
        )
        self._note(
            FaultEvent(
                kind="probation",
                round_index=round_index,
                worker_id=worker.worker_id,
                fact_ids=probe_facts,
                detail=verdict.reason,
            ),
            attach_to_round=False,
        )
        if verdict.kind == "readmit":
            panel = list(self._inner.experts)
            if all(
                member.worker_id != worker.worker_id for member in panel
            ):
                self._inner.replace_experts(Crowd(panel + [worker]))
            self._note(
                FaultEvent(
                    kind="readmit",
                    round_index=round_index,
                    worker_id=worker.worker_id,
                    detail=verdict.reason,
                ),
                attach_to_round=False,
            )

    def _drain_source_events(
        self, answer_source, attempt: int, attach_to_round: bool = True
    ) -> None:
        drain = getattr(answer_source, "drain_events", None)
        if not callable(drain):
            return
        for event in drain():
            self._note(
                event.stamped(self._inner.round_index, attempt),
                attach_to_round=attach_to_round,
            )

    def _note(self, event: FaultEvent, attach_to_round: bool = True) -> None:
        """Record an incident: journal it and, unless told otherwise,
        queue it for attachment to the current round's record."""
        if attach_to_round:
            self._round_events.append(event)
        else:
            self.incidents.append(event)
        if self._journal_path is not None:
            append_journal_record(
                self._journal_path,
                {"kind": "event", "event": fault_event_to_dict(event)},
            )

    # ------------------------------------------------------------------
    # journal / resume
    # ------------------------------------------------------------------

    def _journal_checkpoint(self, answer_source) -> None:
        if self._journal_path is None:
            return
        with OBS.phase("journal"):
            self._write_checkpoint(answer_source)

    def _write_checkpoint(self, answer_source) -> None:
        record: dict = {
            "kind": "checkpoint",
            "session": self._inner.to_checkpoint(),
            "panel": crowd_to_dict(self._inner.experts),
            "reserve": crowd_to_dict(Crowd(self._reserve)),
            "attempt": self._attempt,
            "reassignments_used": self._reassignments_used,
            "round_events": [
                fault_event_to_dict(event) for event in self._round_events
            ],
            "halted": self._halted,
            "rng": self._rng.bit_generator.state,
        }
        if self._supervisor is not None:
            record["trust"] = self._supervisor.get_state()
        if answer_source is not None:
            get_state = getattr(answer_source, "get_state", None)
            if callable(get_state):
                record["source"] = get_state()
        if self._checkpoint_extras is not None:
            record["stream"] = self._checkpoint_extras()
        append_journal_record(self._journal_path, record)

    def rewind_source(self, answer_source) -> None:
        """Apply the journaled answer-source state immediately.

        :meth:`run` does this lazily on its next call; callers that may
        checkpoint a finished session *without* running it again (the
        streaming runtime keeps checkpointing event boundaries after
        the budget is spent) rewind eagerly so those checkpoints carry
        the journaled source state, not a freshly seeded one.
        """
        if self._pending_source_state is None:
            return
        set_state = getattr(answer_source, "set_state", None)
        if callable(set_state):
            set_state(self._pending_source_state)
        self._pending_source_state = None

    def checkpoint(self, answer_source=None) -> None:
        """Force a checkpoint now (streaming event-boundary hook).

        The resilient loop checkpoints at its own transitions; the
        streaming runtime additionally checkpoints after every admitted
        event so a ``kill -9`` at any event boundary resumes
        exactly-once.  No-op without a journal.
        """
        self._journal_checkpoint(answer_source)

    def set_checkpoint_extras(
        self, checkpoint_extras: Callable[[], dict] | None
    ) -> None:
        """Install (or clear) the per-checkpoint extras provider.

        :meth:`resume` cannot receive the callable through the journal;
        the streaming runtime re-attaches it here after restoring."""
        self._checkpoint_extras = checkpoint_extras

    @classmethod
    def resume(
        cls,
        journal_path: str | Path,
        *,
        experts: Crowd | None = None,
        selector: Selector | None = None,
        cost_model: CostModel | None = None,
        retry_policy: RetryPolicy | None = None,
        reserve_experts: Crowd | None = None,
        sleep: Callable[[float], None] | None = None,
        update_engine=None,
        budget_tracker: "CheckingBudget | None" = None,
    ) -> "ResilientCheckingSession":
        """Restore a session from its journal, mid-round if need be.

        The journal's last intact checkpoint supplies the belief, budget
        accounting, pending queries, retry counters, panel composition
        and RNG states; behavioral components (selector, cost model,
        retry policy, sleep hook) are code, not state, and are supplied
        again by the caller.  If the journaled answer source exposed RNG
        state, the source passed to the next :meth:`run` call is rewound
        to it, making the resumed continuation byte-identical to an
        uninterrupted run.
        """
        # Recover first (drop a torn trailing line; on v8 journals also
        # salvage past interior corruption — see
        # :func:`repro.storage.integrity.recover_journal`), then trim
        # records past the last checkpoint: the replay re-journals the
        # in-flight round's records byte-for-byte, so resumed appends
        # extend the journal byte-identically to an uninterrupted run.
        from ..storage.integrity import recover_journal

        recover_journal(journal_path)
        trim_journal_to_last_checkpoint(journal_path)
        records = read_journal(journal_path)
        checkpoint_indices = [
            index
            for index, record in enumerate(records)
            if record.get("kind") == "checkpoint"
        ]
        if not checkpoint_indices:
            raise SerializationError(
                f"journal {journal_path} has no intact checkpoint"
            )
        last_index = checkpoint_indices[-1]
        last = records[last_index]
        try:
            panel = (
                experts
                if experts is not None
                else crowd_from_dict(last["panel"])
            )
            inner = OnlineCheckingSession.from_checkpoint(
                last["session"],
                panel,
                selector=selector,
                cost_model=cost_model,
                update_engine=update_engine,
                budget_tracker=budget_tracker,
            )
            session = cls.__new__(cls)
            reserve = (
                list(reserve_experts)
                if reserve_experts is not None
                else list(crowd_from_dict(last.get("reserve", {"workers": []})))
            )
            rng = np.random.default_rng(0)
            rng.bit_generator.state = last["rng"]
            trust_state = last.get("trust")
            supervisor = (
                TrustSupervisor.from_state(trust_state)
                if trust_state is not None
                else None
            )
            session._init_common(
                inner,
                cost_model=cost_model,
                retry_policy=retry_policy,
                reserve=reserve,
                journal_path=journal_path,
                rng=rng,
                sleep=sleep,
                supervisor=supervisor,
            )
            session._attempt = int(last.get("attempt", 0))
            session._reassignments_used = int(
                last.get("reassignments_used", 0)
            )
            session._round_events = [
                fault_event_from_dict(event)
                for event in last.get("round_events", ())
            ]
            session._halted = bool(last.get("halted", False))
            session._pending_source_state = last.get("source")
            # Rebuild the incident log from the event records preceding
            # the resume checkpoint.  Records after it belong to work the
            # replay will redo (and re-journal), and the in-flight
            # round's events live in ``round_events`` — they rejoin
            # ``incidents`` when the replayed round completes — so both
            # must be excluded or a resumed campaign double-counts them.
            event_payloads = [
                dict(record["event"])
                for record in records[:last_index]
                if record.get("kind") == "event"
            ]
            for in_flight in reversed(last.get("round_events", ())):
                for position in range(len(event_payloads) - 1, -1, -1):
                    if event_payloads[position] == in_flight:
                        del event_payloads[position]
                        break
            session.incidents = [
                fault_event_from_dict(payload) for payload in event_payloads
            ]
        except (KeyError, TypeError, ValueError) as error:
            if isinstance(error, SerializationError):
                raise
            raise SerializationError(
                f"malformed journal checkpoint: {error}"
            ) from error
        return session
