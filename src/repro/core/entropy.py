"""Entropy, data quality, and the conditional-entropy objective.

Implements, in bits (log base 2):

* Shannon entropy ``H(O)`` and the paper's quality function
  ``Q(F) = -H(O)`` (Definition 2);
* the answer-family entropy ``H(AS_CE^T)`` (Definition 4);
* the conditional entropy ``H(O | AS_CE^T)`` that Theorem 1 proves is
  the quantity to minimize when selecting checking tasks (Eq. 34);
* the expected quality ``Q(F|T) = -H(O | AS_CE^T)`` (Definition 5) and
  the expected quality improvement ``dQ = H(O) - H(O|AS)`` (Theorem 1),
  which equals the mutual information ``I(O; AS)``.

Two implementations of the conditional entropy are provided: a fast one
using the chain-rule identity ``H(O|AS) = H(O) + H(AS|O) - H(AS)`` with
the closed form ``H(AS|O) = |T| * sum_cr h(Pr_cr)`` (each answer bit is
conditionally an independent Bernoulli whose entropy does not depend on
the observation), and a naive double sum over the family space used to
cross-validate the fast one in tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from .answers import (
    MAX_FAMILY_BITS,
    crowd_single_query_responses,
    enumerate_answer_families,
    family_distribution,
    family_likelihood,
    single_fact_family_distributions,
)
from .observations import BeliefState
from .workers import Crowd


class DegenerateSamplesError(RuntimeError):
    """Raised when every Monte Carlo sample has zero posterior mass.

    Returning a value in this situation would silently claim perfect
    certainty (the old behaviour divided an empty sum by the sample
    count), so the estimator refuses instead; callers should widen the
    sample budget or fall back to the exact evaluator.
    """


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy in bits, with the ``0 log 0 = 0`` convention.

    Accepts unnormalized non-negative weights and normalizes first.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if np.any(probabilities < -1e-12):
        raise ValueError("probabilities must be non-negative")
    total = probabilities.sum()
    if total <= 0.0:
        raise ValueError("cannot take the entropy of an all-zero vector")
    probabilities = probabilities / total
    positive = probabilities[probabilities > 0.0]
    return float(-(positive * np.log2(positive)).sum())


def binary_entropy(probability: float) -> float:
    """Entropy in bits of a Bernoulli(``probability``) variable.

    Values a hair outside [0, 1] (float summation slop in marginals)
    are clamped; anything beyond ``1e-9`` slack is a real error.
    """
    if not -1e-9 <= probability <= 1.0 + 1e-9:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    probability = min(max(probability, 0.0), 1.0)
    if probability in (0.0, 1.0):
        return 0.0
    complement = 1.0 - probability
    return float(
        -probability * np.log2(probability) - complement * np.log2(complement)
    )


def observation_entropy(belief: BeliefState) -> float:
    """``H(O)`` of a belief state.

    Sparse beliefs skip the dense materialization: their support holds
    exactly the positive entries :func:`shannon_entropy` would keep, in
    the same (ascending state) order.  Serial and parallel runs agree
    bit for bit because both evaluate the same representation; against
    the dense path the result matches up to pairwise-summation grouping
    of the interleaved zeros (last-ulp).
    """
    from .kernel import SparseBeliefState

    if isinstance(belief, SparseBeliefState):
        return belief.entropy_bits()
    return shannon_entropy(belief.probabilities)


def quality(belief: BeliefState) -> float:
    """Paper Definition 2: ``Q(F) = -H(O)``.  Higher is better; 0 is
    perfect certainty."""
    return -observation_entropy(belief)


def answer_family_entropy(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> float:
    """``H(AS_CE^T)`` (paper Definition 4) by exact enumeration."""
    if not query_fact_ids:
        return 0.0
    distribution = family_distribution(
        belief, query_fact_ids, experts, max_family_bits=max_family_bits
    )
    return shannon_entropy(distribution)


def conditional_entropy(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
    prior_entropy: float | None = None,
) -> float:
    """``H(O | AS_CE^T)`` — the selection objective (paper Eq. 34).

    Uses the chain-rule identity
    ``H(O|AS) = H(O) + H(AS|O) - H(AS)`` with
    ``H(AS|O) = |T| * sum_cr h(Pr_cr)``.

    An empty query set yields ``H(O)`` (no information gained).
    ``prior_entropy`` lets callers that evaluate many query sets against
    the same belief pass a precomputed ``H(O)``.
    """
    if prior_entropy is None:
        prior_entropy = observation_entropy(belief)
    if not query_fact_ids:
        return prior_entropy
    entropy_given_observation = len(query_fact_ids) * crowd_answer_noise(experts)
    family_entropy = answer_family_entropy(
        belief, query_fact_ids, experts, max_family_bits=max_family_bits
    )
    value = prior_entropy + entropy_given_observation - family_entropy
    # Mutual information is non-negative, so H(O|AS) <= H(O); tiny
    # negative slack can appear from float cancellation.
    return float(min(max(value, 0.0), prior_entropy))


def crowd_answer_noise(experts: Crowd) -> float:
    """``H(AS|O)`` per queried fact: ``sum_cr h(Pr_cr)`` in bits.

    The crowd's answer-noise term depends only on the accuracy profile,
    so it is memoized on the accuracy tuple; the sum runs in worker
    order, matching the historical inline ``sum(...)`` bit for bit.
    """
    return _cached_answer_noise(tuple(worker.accuracy for worker in experts))


@lru_cache(maxsize=256)
def _cached_answer_noise(accuracies: tuple[float, ...]) -> float:
    return sum(binary_entropy(accuracy) for accuracy in accuracies)


def first_step_gains(
    belief: BeliefState,
    experts: Crowd,
    prior_entropy: float | None = None,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> np.ndarray:
    """First-step gains ``gain^∅({f})`` of every fact in one kernel.

    Entry ``i`` equals
    ``H(O) - conditional_entropy(belief, [f_i], experts)`` (positional
    order), but all ``n`` facts are evaluated together: the crowd's
    single-query response tensor is shared, so the whole group costs one
    ``(n, 2) @ (2, 2**|CE|)`` matmul plus a row-wise entropy instead of
    ``n`` separate family enumerations.  This is the kernel the
    lazy-greedy selector seeds its bound heap from.

    Applies the same clamping as :func:`conditional_entropy` (gains lie
    in ``[0, H(O)]``), so the values match the scalar path up to float
    round-off.
    """
    if prior_entropy is None:
        prior_entropy = observation_entropy(belief)
    if len(experts) == 0:
        return np.zeros(belief.num_facts)
    distributions = single_fact_family_distributions(
        belief, experts, max_family_bits=max_family_bits
    )
    # Row-wise shannon_entropy with the same normalize-first convention.
    totals = distributions.sum(axis=1, keepdims=True)
    distributions = distributions / totals
    contributions = np.zeros_like(distributions)
    positive = distributions > 0.0
    contributions[positive] = distributions[positive] * np.log2(
        distributions[positive]
    )
    family_entropies = -contributions.sum(axis=1)
    answer_noise = crowd_answer_noise(experts)
    gains = family_entropies - answer_noise
    return np.minimum(np.maximum(gains, 0.0), prior_entropy)


def first_step_gains_many(
    states: Sequence[BeliefState],
    experts: Crowd,
    prior_entropies: Iterable[float] | None = None,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> list[np.ndarray]:
    """:func:`first_step_gains` for a whole shard of groups at once.

    Stacks every group's ``(n_g, 2)`` pattern-marginal block into one
    ``(sum n_g, 2) @ (2, 2**|CE|)`` matmul against the shared crowd
    response tensor, then splits and clamps per group.  Each output row
    is a fixed-order two-term dot product regardless of how rows are
    batched, and the row-wise entropy and clamp operate elementwise, so
    the result is bitwise identical to calling :func:`first_step_gains`
    per group — the batch only removes the per-group Python/BLAS
    dispatch overhead, which dominates at hundreds of small groups.
    """
    states = list(states)
    if prior_entropies is None:
        priors = [observation_entropy(state) for state in states]
    else:
        priors = list(prior_entropies)
        if len(priors) != len(states):
            raise ValueError("need one prior entropy per state")
    if not states:
        return []
    if len(experts) == 0:
        return [np.zeros(state.num_facts) for state in states]
    responses = crowd_single_query_responses(
        experts, max_family_bits=max_family_bits
    )
    marginals = np.concatenate([state.marginals() for state in states])
    pattern = np.stack([1.0 - marginals, marginals], axis=1)
    distributions = pattern @ responses
    totals = distributions.sum(axis=1, keepdims=True)
    distributions = distributions / totals
    contributions = np.zeros_like(distributions)
    positive = distributions > 0.0
    contributions[positive] = distributions[positive] * np.log2(
        distributions[positive]
    )
    family_entropies = -contributions.sum(axis=1)
    gains = family_entropies - crowd_answer_noise(experts)
    results: list[np.ndarray] = []
    offset = 0
    for state, prior in zip(states, priors):
        chunk = gains[offset:offset + state.num_facts]
        offset += state.num_facts
        results.append(np.minimum(np.maximum(chunk, 0.0), prior))
    return results


def conditional_entropy_naive(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
) -> float:
    """``H(O | AS_CE^T)`` by the direct double sum of Eq. 34.

    Enumerates every concrete answer family, computes the posterior over
    observations for each, and averages the posterior entropies weighted
    by the family probabilities.  Exponential; test/reference use only.
    """
    if not query_fact_ids:
        return observation_entropy(belief)
    prior = belief.probabilities
    total = 0.0
    for family in enumerate_answer_families(query_fact_ids, experts):
        likelihood = family_likelihood(belief, family)
        joint = prior * likelihood
        family_probability = joint.sum()
        if family_probability <= 0.0:
            continue
        posterior = joint / family_probability
        total += family_probability * shannon_entropy(posterior)
    return float(total)


def conditional_entropy_sampled(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    num_samples: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte Carlo estimate of ``H(O | AS_CE^T)``.

    For large expert crowds the family space ``2^(|T| |CE|)`` cannot be
    enumerated; this estimator samples answer families from the model
    (sample a pattern ``v ~ q``, then flip each answer bit with the
    worker's error rate) and averages the exact posterior entropies:

        H(O|AS) ~= mean over sampled families A of H(O | A).

    The estimate is consistent and, unlike a naive plug-in entropy of
    the *family* distribution, needs no bias correction because each
    posterior entropy is computed exactly.

    Parameters
    ----------
    num_samples:
        Sampled answer families; the standard error shrinks as
        ``1/sqrt(num_samples)``.
    """
    from .answers import pattern_marginal, worker_response_matrix  # local: cycle-free

    if not query_fact_ids:
        return observation_entropy(belief)
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    rng = np.random.default_rng(rng)
    num_queries = len(query_fact_ids)
    accuracies = np.array([worker.accuracy for worker in experts])
    num_workers = accuracies.size
    if num_workers == 0:
        return observation_entropy(belief)

    marginal = pattern_marginal(belief, query_fact_ids)
    patterns = rng.choice(marginal.size, size=num_samples, p=marginal)
    pattern_bits = (
        (patterns[:, None] >> np.arange(num_queries)) & 1
    ).astype(bool)
    # answers[s, j, t]: worker j's sampled answer to query t in sample s.
    correct = (
        rng.random((num_samples, num_workers, num_queries))
        < accuracies[None, :, None]
    )
    answers = np.where(correct, pattern_bits[:, None, :],
                       ~pattern_bits[:, None, :])

    # Posterior entropy for each sampled family, computed exactly.
    from .observations import truth_table

    positions = [
        belief.facts.position_of(fact_id) for fact_id in query_fact_ids
    ]
    truth_table_view = truth_table(belief.num_facts)[:, positions]
    prior = belief.probabilities
    total = 0.0
    retained = 0
    for sample in range(num_samples):
        # (workers, observations, queries) in one shot per sample.
        matches = (
            truth_table_view[None, :, :] == answers[sample][:, None, :]
        )
        factors = np.where(
            matches,
            accuracies[:, None, None],
            1.0 - accuracies[:, None, None],
        )
        likelihood = factors.prod(axis=(0, 2))
        joint = prior * likelihood
        mass = joint.sum()
        if mass <= 0.0:
            # Degenerate sample: near-deterministic workers drove the
            # family likelihood below the float64 floor everywhere the
            # belief has mass.  It carries no usable posterior.
            continue
        retained += 1
        total += shannon_entropy(joint)
    if retained == 0:
        raise DegenerateSamplesError(
            f"all {num_samples} sampled answer families have zero "
            "posterior mass; increase num_samples, reduce the panel, or "
            "use the exact conditional entropy"
        )
    # Average over the retained samples only: dividing by num_samples
    # would bias the estimate toward 0 (overstating information gain)
    # whenever degenerate samples were skipped.
    return total / retained


def expected_quality(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> float:
    """Paper Definition 5: expected post-checking quality
    ``Q(F|T) = -H(O | AS_CE^T)``."""
    return -conditional_entropy(
        belief, query_fact_ids, experts, max_family_bits=max_family_bits
    )


def expected_quality_improvement(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> float:
    """Theorem 1: ``dQ(F|T) = H(O) - H(O | AS_CE^T) = I(O; AS_CE^T)``.

    Always non-negative — information (in expectation) never hurts.
    """
    return observation_entropy(belief) - conditional_entropy(
        belief, query_fact_ids, experts, max_family_bits=max_family_bits
    )
