"""Checking-task selection (paper section III-B/C).

Selecting the size-``k`` query set that maximizes expected quality
improvement is equivalent to minimizing the conditional entropy
``H(O | AS_CE^T)`` (Theorem 2) and is NP-hard (Theorem 3).  This module
provides:

* :class:`ExactSelector` — brute-force **OPT** over all size-``k``
  subsets (with an optional wall-clock deadline, used to reproduce the
  "timeout" rows of Table III);
* :class:`GreedySelector` — the paper's Algorithm 2 **Approx**,
  a (1 - 1/e)-approximation that adds the fact with the largest
  marginal entropy-reduction gain until ``k`` facts are chosen or no
  fact has a positive gain;
* :class:`LazyGreedySelector` — the same selections via CELF lazy
  evaluation (licensed by the gain's monotone submodularity, Theorems
  1–3) seeded from batch-vectorized first-step gains; the default
  engine of the online/resilient runtimes;
* :class:`RandomSelector` — the **Random** baseline of section IV-C3;
* :class:`MaxMarginalEntropySelector` — the trivial rule from related
  work ([41]): pick the facts whose marginal ``P(f)`` is most
  uncertain, ignoring correlations and the expert answer model;
* :class:`FactoredExactSelector` — an extension beyond the paper: an
  exact selector that exploits the group decomposition with dynamic
  programming over per-group allocations, exponential only within
  groups instead of across the whole fact set.

All selectors work on a :class:`~repro.core.observations.FactoredBelief`.
Because groups are independent, the global conditional entropy
decomposes as ``H(O|AS^T) = sum_g H(O_g | AS^{T ∩ F_g})``, so every
selector only ever evaluates per-group entropies.
"""

from __future__ import annotations

import heapq
import itertools
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import comb
from typing import Iterable, Sequence

import numpy as np

from .answers import FamilySpaceTooLarge
from .entropy import (
    binary_entropy,
    conditional_entropy,
    first_step_gains,
    first_step_gains_many,
    observation_entropy,
)
from .observations import BeliefState, FactoredBelief
from .workers import Crowd


class SelectionTimeout(RuntimeError):
    """Raised when a selector exceeds its wall-clock deadline."""


@dataclass
class SelectionStats:
    """Work counters of a selector, for benchmarks and regression tests.

    ``entropy_evaluations`` counts *scalar* conditional-entropy kernel
    invocations (cache misses), ``prior_evaluations`` counts ``H(O)``
    computations, ``batch_evaluations`` counts vectorized whole-group
    first-step kernels (``batch_facts`` facts covered by them in total),
    ``sampled_evaluations`` counts Monte Carlo estimator calls, and
    ``heap_pops`` counts lazy-heap pops.  Counters accumulate across
    rounds; call :meth:`reset` between measurements.
    """

    entropy_evaluations: int = 0
    prior_evaluations: int = 0
    batch_evaluations: int = 0
    batch_facts: int = 0
    sampled_evaluations: int = 0
    heap_pops: int = 0
    rounds: int = 0

    @property
    def total_evaluations(self) -> int:
        """Every entropy-kernel invocation, scalar or batched."""
        return (
            self.entropy_evaluations
            + self.prior_evaluations
            + self.batch_evaluations
            + self.sampled_evaluations
        )

    def reset(self) -> None:
        self.entropy_evaluations = 0
        self.prior_evaluations = 0
        self.batch_evaluations = 0
        self.batch_facts = 0
        self.sampled_evaluations = 0
        self.heap_pops = 0
        self.rounds = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "entropy_evaluations": self.entropy_evaluations,
            "prior_evaluations": self.prior_evaluations,
            "batch_evaluations": self.batch_evaluations,
            "batch_facts": self.batch_facts,
            "sampled_evaluations": self.sampled_evaluations,
            "heap_pops": self.heap_pops,
            "rounds": self.rounds,
            "total_evaluations": self.total_evaluations,
        }


class Selector(ABC):
    """Strategy interface: pick up to ``k`` checking tasks."""

    #: Human-readable name used in experiment reports.
    name: str = "base"

    @abstractmethod
    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        """Return up to ``k`` fact ids to send to the expert crowd.

        May return fewer than ``k`` ids (or none) when no candidate
        offers positive expected quality gain.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class _GroupEntropyCache:
    """Caches per-group conditional entropies across selection passes.

    Keyed on the group's immutable :class:`BeliefState` identity (and,
    for conditional entries, the expert crowd), so a stateful selector
    can carry the cache across rounds and only pay for groups whose
    belief actually changed — while a changed crowd (e.g. a trust
    quarantine) correctly invalidates every conditional entry.

    Entries computed against a superseded state are evicted the first
    time the group is written under its new state (and eagerly via
    :meth:`invalidate_group`): conditional entries live in one
    per-group sub-dict that is dropped wholesale on a state change, so
    a long campaign never pins the old ``2**n`` probability arrays of
    every past round — the cache stays bounded by the *current* states.
    """

    def __init__(self, stats: SelectionStats | None = None) -> None:
        self.stats = stats if stats is not None else SelectionStats()
        self._prior: dict[int, tuple[BeliefState, float]] = {}
        self._conditional: dict[
            int, tuple[BeliefState, Crowd, dict[frozenset[int], float]]
        ] = {}

    def prior(self, group_index: int, state: BeliefState) -> float:
        cached = self._prior.get(group_index)
        if cached is not None and cached[0] is state:
            return cached[1]
        value = observation_entropy(state)
        self.stats.prior_evaluations += 1
        self._prior[group_index] = (state, value)
        return value

    def conditional(
        self,
        group_index: int,
        state: BeliefState,
        query_fact_ids: frozenset[int],
        experts: Crowd,
    ) -> float:
        if not query_fact_ids:
            return self.prior(group_index, state)
        cached = self._conditional.get(group_index)
        if cached is None or cached[0] is not state or not (
            cached[1] is experts or cached[1] == experts
        ):
            values: dict[frozenset[int], float] = {}
            self._conditional[group_index] = (state, experts, values)
        else:
            values = cached[2]
            if query_fact_ids in values:
                return values[query_fact_ids]
        value = conditional_entropy(
            state,
            sorted(query_fact_ids),
            experts,
            prior_entropy=self.prior(group_index, state),
        )
        self.stats.entropy_evaluations += 1
        values[query_fact_ids] = value
        return value

    def invalidate_group(self, group_index: int) -> None:
        """Drop everything cached for one group (e.g. after its belief
        was updated), releasing the superseded state immediately."""
        self._prior.pop(group_index, None)
        self._conditional.pop(group_index, None)

    @property
    def num_entries(self) -> int:
        """Total cached values (prior + conditional), for bound tests."""
        return len(self._prior) + sum(
            len(entry[-1]) for entry in self._conditional.values()
        )


class GreedySelector(Selector):
    """Paper Algorithm 2: iterative greedy with early stop on zero gain.

    The gain of adding fact ``f`` to the current query set ``T`` is
    ``gain^T(f) = H(O|AS^T) - H(O|AS^{T ∪ {f}})`` (Eq. 35), which by
    the group decomposition only involves ``f``'s own group.  Time
    complexity is ``O(N k)`` entropy evaluations for ``N`` candidates.

    The selector keeps a cache of single-fact gains keyed on each
    group's (immutable) belief object: across checking rounds only the
    groups actually updated by the previous round are re-evaluated,
    which turns the per-round cost from ``O(N)`` into ``O(changed)``
    without changing any selected set.
    """

    name = "Approx"

    def __init__(self, gain_tolerance: float = 1e-12):
        #: Gains at or below this are treated as zero (greedy stops).
        self.gain_tolerance = gain_tolerance
        #: Work counters (shared with the entropy cache).
        self.stats = SelectionStats()
        self._cache = _GroupEntropyCache(self.stats)
        # group_index -> (state and crowd computed against,
        # {fact_id: gain}); the whole sub-dict is dropped when either is
        # superseded, so old probability arrays are never pinned across
        # rounds and a changed crowd never serves stale gains.
        self._first_step_gain: dict[
            int, tuple[BeliefState, Crowd, dict[int, float]]
        ] = {}

    def invalidate_groups(self, group_indices: Iterable[int]) -> None:
        """Explicitly drop cached entropies/gains of updated groups.

        Correctness never requires this — caches are keyed on belief
        *identity* — but calling it right after a belief update releases
        the superseded states immediately instead of at the next
        selection pass.
        """
        for group_index in group_indices:
            self._cache.invalidate_group(group_index)
            self._first_step_gain.pop(group_index, None)

    @property
    def cache_entries(self) -> int:
        """Total cached values, for memory-bound regression tests."""
        return self._cache.num_entries + sum(
            len(entry[-1]) for entry in self._first_step_gain.values()
        )

    def _single_fact_gain(
        self, belief: FactoredBelief, experts: Crowd, fact_id: int
    ) -> float:
        """Gain of ``{f}`` over the empty set, cached per belief state."""
        group_index = belief.group_index_of(fact_id)
        state = belief[group_index]
        cached = self._first_step_gain.get(group_index)
        if cached is None or cached[0] is not state or not (
            cached[1] is experts or cached[1] == experts
        ):
            gains: dict[int, float] = {}
            self._first_step_gain[group_index] = (state, experts, gains)
        else:
            gains = cached[2]
            if fact_id in gains:
                return gains[fact_id]
        prior = self._cache.prior(group_index, state)
        conditional = self._cache.conditional(
            group_index, state, frozenset((fact_id,)), experts
        )
        gain = prior - conditional
        gains[fact_id] = gain
        return gain

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        return [fact_id for fact_id, _gain in
                self.select_with_gains(belief, experts, k)]

    def select_with_gains(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[tuple[int, float]]:
        """Like :meth:`select` but also return each pick's marginal gain.

        The gain sequence is non-increasing (submodularity), which is
        what licenses merging per-shard sequences by a k-way merge in
        the parallel engine.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self.stats.rounds += 1
        selected: list[tuple[int, float]] = []
        group_queries: dict[int, list[int]] = {}
        # Sorted iteration + strict ">" makes equal-gain ties break on
        # the lowest fact id, independent of hash randomization.
        candidates = sorted(belief.fact_ids)

        while len(selected) < k and candidates:
            best_fact: int | None = None
            best_gain = self.gain_tolerance
            for fact_id in candidates:
                group_index = belief.group_index_of(fact_id)
                queries = group_queries.get(group_index)
                if not queries:
                    gain = self._single_fact_gain(belief, experts, fact_id)
                else:
                    state = belief[group_index]
                    try:
                        current = self._cache.conditional(
                            group_index, state, frozenset(queries), experts
                        )
                        with_fact = self._cache.conditional(
                            group_index,
                            state,
                            frozenset(queries) | {fact_id},
                            experts,
                        )
                    except FamilySpaceTooLarge:
                        # Stacking another query on this group would make
                        # the answer-family space unenumerable (huge CE);
                        # treat the candidate as infeasible this round —
                        # the greedy then spreads across groups instead.
                        continue
                    gain = current - with_fact
                if gain > best_gain:
                    best_fact = fact_id
                    best_gain = gain
            if best_fact is None:
                break  # no fact offers positive gain (Algorithm 2 line 4)
            selected.append((best_fact, best_gain))
            candidates.remove(best_fact)
            group_index = belief.group_index_of(best_fact)
            group_queries.setdefault(group_index, []).append(best_fact)
        return selected


class LazyGreedySelector(Selector):
    """CELF lazy greedy: Algorithm 2's selections at a fraction of the cost.

    Produces exactly the same query sets as :class:`GreedySelector`
    (same gain function, same ``gain_tolerance`` stop rule, same
    lowest-fact-id tie-breaking) but avoids the eager ``O(N k)``
    per-round gain scan with two machines:

    * **Lazy evaluation (CELF).**  Candidate gains live in a max-heap of
      *stale upper bounds*.  The gain of adding ``f`` only depends on
      ``f``'s own group's query set, and within a group the gain
      function is monotone submodular (paper Theorems 1–3), so a gain
      computed against an earlier, smaller query set upper-bounds the
      current gain.  A popped entry whose bound is stale is re-evaluated
      and pushed back; a popped entry whose bound is *fresh* is the true
      argmax and is selected without touching the other ``N - 1``
      candidates.
    * **Batched first-step gains.**  The heap is seeded with the gains
      of every singleton query set, computed one whole group at a time
      by :func:`repro.core.entropy.first_step_gains` — a single matmul
      against the crowd's shared single-query response tensor instead of
      per-fact family enumerations.

    The first-step gain vectors are cached per group keyed on belief
    identity, so across checking rounds only the groups actually updated
    by the previous round are re-evaluated (``O(changed)`` per round);
    superseded states are evicted on write, keeping memory bounded by
    the current belief.  :meth:`invalidate_groups` releases updated
    groups' entries eagerly — the online sessions call it after every
    belief update.
    """

    name = "Approx-Lazy"

    def __init__(self, gain_tolerance: float = 1e-12):
        #: Gains at or below this are treated as zero (greedy stops).
        self.gain_tolerance = gain_tolerance
        #: Work counters (heap pops, kernel invocations).
        self.stats = SelectionStats()
        self._cache = _GroupEntropyCache(self.stats)
        # group_index -> (state and crowd computed against, per-fact
        # gain vector); superseded entries are replaced on write.
        self._first_gains: dict[
            int, tuple[BeliefState, Crowd, np.ndarray]
        ] = {}

    def invalidate_groups(self, group_indices: Iterable[int]) -> None:
        """Explicitly drop cached entropies/gains of updated groups."""
        for group_index in group_indices:
            self._cache.invalidate_group(group_index)
            self._first_gains.pop(group_index, None)

    @property
    def cache_entries(self) -> int:
        """Total cached values, for memory-bound regression tests."""
        return self._cache.num_entries + sum(
            entry[-1].size for entry in self._first_gains.values()
        )

    def _group_first_gains(
        self, group_index: int, state: BeliefState, experts: Crowd
    ) -> np.ndarray:
        cached = self._first_gains.get(group_index)
        if cached is not None and cached[0] is state and (
            cached[1] is experts or cached[1] == experts
        ):
            return cached[2]
        gains = first_step_gains(
            state, experts, prior_entropy=self._cache.prior(group_index, state)
        )
        self.stats.batch_evaluations += 1
        self.stats.batch_facts += gains.size
        self._first_gains[group_index] = (state, experts, gains)
        return gains

    def _prime_first_gains(
        self, belief: FactoredBelief, experts: Crowd
    ) -> None:
        """Fill the first-gain cache for every stale group in one pass.

        All groups whose cached gain vector is missing or superseded are
        evaluated through one stacked
        :func:`~repro.core.entropy.first_step_gains_many` call — a
        single cross-group matmul against the shared crowd response
        tensor — instead of a per-group Python loop.  Bitwise identical
        to evaluating each group separately (see the kernel's docstring);
        the stats counters still tick once per group so work accounting
        is unchanged.
        """
        stale: list[tuple[int, BeliefState]] = []
        for group_index, state in enumerate(belief):
            cached = self._first_gains.get(group_index)
            if cached is not None and cached[0] is state and (
                cached[1] is experts or cached[1] == experts
            ):
                continue
            stale.append((group_index, state))
        if not stale:
            return
        priors = [
            self._cache.prior(group_index, state)
            for group_index, state in stale
        ]
        batched = first_step_gains_many(
            [state for _index, state in stale], experts,
            prior_entropies=priors,
        )
        for (group_index, state), gains in zip(stale, batched):
            self.stats.batch_evaluations += 1
            self.stats.batch_facts += gains.size
            self._first_gains[group_index] = (state, experts, gains)

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        return [fact_id for fact_id, _gain in
                self.select_with_gains(belief, experts, k)]

    def select_with_gains(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[tuple[int, float]]:
        """Like :meth:`select` but also return each pick's marginal gain.

        A fresh heap pop *is* the argmax, so its bound is the exact gain
        of the pick; the resulting gain sequence is non-increasing
        (submodularity), licensing the parallel engine's k-way merge of
        per-shard sequences.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        self.stats.rounds += 1
        # Heap entries are (-gain, fact_id, bound_version, group_index);
        # fact_id second makes equal-gain ties pop the lowest id first,
        # matching the eager greedy's deterministic tie-breaking.  The
        # bound_version is the size of the group's query set the gain
        # was computed against: the entry is fresh iff it still matches.
        heap: list[tuple[float, int, int, int]] = []
        self._prime_first_gains(belief, experts)
        for group_index, state in enumerate(belief):
            gains = self._group_first_gains(group_index, state, experts)
            for fact, gain in zip(state.facts, gains):
                if gain > self.gain_tolerance:
                    heap.append((-float(gain), fact.fact_id, 0, group_index))
        heapq.heapify(heap)

        selected: list[tuple[int, float]] = []
        group_queries: dict[int, list[int]] = {}
        while len(selected) < k and heap:
            neg_gain, fact_id, version, group_index = heapq.heappop(heap)
            self.stats.heap_pops += 1
            queries = group_queries.get(group_index, [])
            if version == len(queries):
                # Fresh bound: by submodularity every other entry's
                # bound dominates its true gain, so this is the argmax.
                selected.append((fact_id, -neg_gain))
                group_queries.setdefault(group_index, []).append(fact_id)
                continue
            state = belief[group_index]
            try:
                current = self._cache.conditional(
                    group_index, state, frozenset(queries), experts
                )
                with_fact = self._cache.conditional(
                    group_index, state, frozenset(queries) | {fact_id},
                    experts,
                )
            except FamilySpaceTooLarge:
                # Stacking another query on this group is unenumerable;
                # the group's query set only grows within a round, so
                # the candidate stays infeasible — drop it (the eager
                # greedy skips it on every remaining iteration too).
                continue
            gain = current - with_fact
            if gain > self.gain_tolerance:
                heapq.heappush(
                    heap, (-gain, fact_id, len(queries), group_index)
                )
        return selected


class SampledGreedySelector(Selector):
    """Greedy selection with Monte Carlo conditional entropies.

    For very large checking crowds the answer-family space cannot be
    enumerated, so the exact greedy must skip within-group stacking
    (see :class:`GreedySelector`).  This variant estimates
    ``H(O | AS^T)`` by sampling answer families instead
    (:func:`repro.core.entropy.conditional_entropy_sampled`), making the
    full objective available at any crowd size — at the price of
    estimator noise and per-candidate sampling cost.

    Within one selection round every entropy estimate is cached per
    ``(group, query set)`` — in particular the *current* group entropy
    is estimated once and reused for every candidate of the group, so a
    gain never compares two independently-noisy estimates of the same
    quantity (which produced phantom gains above ``gain_tolerance`` and
    ``O(N)`` redundant sampling per round).  All estimates within a
    round also share one random seed (common random numbers), so both
    the with/without difference and cross-candidate comparisons reuse
    the same draws as far as the query sets allow and subtract
    correlated noise instead of adding independent noise.

    Parameters
    ----------
    num_samples:
        Sampled families per entropy evaluation.
    rng:
        Seed for the sampler.
    gain_tolerance:
        Gains at or below this are treated as zero; should exceed the
        estimator's noise floor to avoid chasing phantom gains.
    """

    name = "Approx-MC"

    def __init__(
        self,
        num_samples: int = 500,
        rng: np.random.Generator | int | None = None,
        gain_tolerance: float = 1e-3,
    ):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.num_samples = num_samples
        self.gain_tolerance = gain_tolerance
        self._rng = np.random.default_rng(rng)
        #: Work counters (``sampled_evaluations`` counts MC estimates).
        self.stats = SelectionStats()

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        from .entropy import conditional_entropy_sampled

        if k < 0:
            raise ValueError("k must be non-negative")
        self.stats.rounds += 1
        selected: list[int] = []
        group_queries: dict[int, list[int]] = {}
        candidates = sorted(belief.fact_ids)
        # One seed per round: every estimate of the round shares the
        # same draws (common random numbers), so both the with/without
        # difference and cross-candidate comparisons subtract correlated
        # noise; cached per (group, query set) so each entropy is
        # estimated exactly once per round.
        round_seed = int(self._rng.integers(0, 2**63))
        entropy_cache: dict[tuple[int, frozenset[int]], float] = {}

        def entropy_of(group_index: int, queries: Sequence[int]) -> float:
            key = (group_index, frozenset(queries))
            if key in entropy_cache:
                return entropy_cache[key]
            state = belief[group_index]
            if not queries:
                value = observation_entropy(state)
                self.stats.prior_evaluations += 1
            else:
                value = conditional_entropy_sampled(
                    state, sorted(queries), experts,
                    num_samples=self.num_samples,
                    rng=np.random.default_rng(round_seed),
                )
                self.stats.sampled_evaluations += 1
            entropy_cache[key] = value
            return value

        while len(selected) < k and candidates:
            best_fact: int | None = None
            best_gain = self.gain_tolerance
            for fact_id in candidates:
                group_index = belief.group_index_of(fact_id)
                queries = group_queries.get(group_index, [])
                current = entropy_of(group_index, queries)
                with_fact = entropy_of(group_index, queries + [fact_id])
                gain = current - with_fact
                if gain > best_gain:
                    best_fact = fact_id
                    best_gain = gain
            if best_fact is None:
                break
            selected.append(best_fact)
            candidates.remove(best_fact)
            group_index = belief.group_index_of(best_fact)
            group_queries.setdefault(group_index, []).append(best_fact)
        return selected


class ExactSelector(Selector):
    """Brute-force **OPT**: evaluate every size-``k`` subset.

    Caches per-group subset entropies, but the subset enumeration is
    ``O(C(N, k))`` and grows exponentially in ``k`` — exactly the
    behaviour Table III of the paper demonstrates.

    Parameters
    ----------
    max_subsets:
        Safety valve: raise :class:`RuntimeError` if the enumeration
        would exceed this many subsets.
    deadline_seconds:
        Optional wall-clock limit; :class:`SelectionTimeout` is raised
        when exceeded (used by the Table III harness).
    """

    name = "OPT"

    def __init__(
        self,
        max_subsets: int | None = 20_000_000,
        deadline_seconds: float | None = None,
    ):
        self.max_subsets = max_subsets
        self.deadline_seconds = deadline_seconds
        self._cache = _GroupEntropyCache()

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        fact_ids = belief.fact_ids
        k = min(k, len(fact_ids))
        if k == 0:
            return []
        if self.max_subsets is not None and comb(len(fact_ids), k) > self.max_subsets:
            raise RuntimeError(
                f"OPT would enumerate C({len(fact_ids)}, {k}) subsets "
                f"(> limit {self.max_subsets})"
            )
        deadline = (
            time.monotonic() + self.deadline_seconds
            if self.deadline_seconds is not None
            else None
        )

        best_subset: tuple[int, ...] | None = None
        best_objective = float("inf")
        for count, subset in enumerate(itertools.combinations(fact_ids, k)):
            if deadline is not None and count % 64 == 0:
                if time.monotonic() > deadline:
                    raise SelectionTimeout(
                        f"OPT exceeded {self.deadline_seconds}s at "
                        f"subset {count} of C({len(fact_ids)}, {k})"
                    )
            per_group: dict[int, set[int]] = {}
            for fact_id in subset:
                per_group.setdefault(
                    belief.group_index_of(fact_id), set()
                ).add(fact_id)
            # Objective differs from the prior total only on the touched
            # groups; compare by the (negative) total gain.
            objective = 0.0
            try:
                for group_index, queries in per_group.items():
                    state = belief[group_index]
                    objective -= self._cache.prior(group_index, state)
                    objective += self._cache.conditional(
                        group_index, state, frozenset(queries), experts
                    )
            except FamilySpaceTooLarge:
                continue  # unenumerable subset: skip as infeasible
            if objective < best_objective - 1e-15:
                best_objective = objective
                best_subset = subset
        assert best_subset is not None
        return list(best_subset)


class FactoredExactSelector(Selector):
    """Exact selection via dynamic programming over groups (extension).

    Not in the paper: because the conditional entropy decomposes over
    independent groups, the optimal size-``k`` set is an optimal
    *allocation* of per-group subset sizes.  For each group we compute
    the best subset of every size ``0..k`` (exponential only within the
    group), then a knapsack-style DP picks the allocation maximizing
    total gain.  Returns the same objective value as
    :class:`ExactSelector` while scaling to large fact sets.
    """

    name = "OPT-DP"

    def __init__(self) -> None:
        self._cache = _GroupEntropyCache()

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        if k == 0:
            return []
        num_groups = len(belief)
        # best_gain[g][j], best_subset[g][j]: best gain and subset of
        # exactly j queries inside group g.
        best_gain: list[list[float]] = []
        best_subset: list[list[tuple[int, ...]]] = []
        for group_index in range(num_groups):
            state = belief[group_index]
            group_fact_ids = [fact.fact_id for fact in state.facts]
            prior = self._cache.prior(group_index, state)
            max_size = min(k, len(group_fact_ids))
            gains = [0.0] * (max_size + 1)
            subsets: list[tuple[int, ...]] = [()] * (max_size + 1)
            for size in range(1, max_size + 1):
                for subset in itertools.combinations(group_fact_ids, size):
                    gain = prior - self._cache.conditional(
                        group_index, state, frozenset(subset), experts
                    )
                    if gain > gains[size]:
                        gains[size] = gain
                        subsets[size] = subset
            best_gain.append(gains)
            best_subset.append(subsets)

        # DP over groups: dp[j] = best total gain using exactly j queries.
        NEG = float("-inf")
        dp = [0.0] + [NEG] * k
        choice: list[list[int]] = [[0] * num_groups for _ in range(k + 1)]
        for group_index in range(num_groups):
            gains = best_gain[group_index]
            new_dp = dp[:]
            new_choice = [row[:] for row in choice]
            for used in range(k + 1):
                if dp[used] == NEG:
                    continue
                for size in range(1, min(len(gains) - 1, k - used) + 1):
                    total = dp[used] + gains[size]
                    if total > new_dp[used + size]:
                        new_dp[used + size] = total
                        row = choice[used][:]
                        row[group_index] = size
                        new_choice[used + size] = row
            dp = new_dp
            choice = new_choice

        # The best allocation over at most k queries (gains are
        # monotone, but guard against all-zero-gain edge cases).
        best_total, best_k = max(
            ((value, j) for j, value in enumerate(dp) if value != NEG),
            key=lambda pair: (pair[0], -pair[1]),
        )
        if best_total <= 0.0:
            return []
        selected: list[int] = []
        for group_index, size in enumerate(choice[best_k]):
            if size:
                selected.extend(best_subset[group_index][size])
        return selected


#: Registry of CLI-selectable selector constructors.
SELECTOR_NAMES = ("lazy", "greedy", "sampled", "random", "max-entropy")


def make_selector(
    name: str, seed: int | None = None
) -> Selector:
    """Build a selector by CLI name.

    ``lazy`` (the default engine), ``greedy`` (the eager reference
    Approx), ``sampled`` (Monte Carlo greedy for unenumerable crowds),
    ``random`` and ``max-entropy`` (baselines).  ``seed`` feeds the
    stochastic selectors and is ignored by the deterministic ones.
    """
    key = name.strip().lower()
    if key == "lazy":
        return LazyGreedySelector()
    if key == "greedy":
        return GreedySelector()
    if key == "sampled":
        return SampledGreedySelector(rng=seed)
    if key == "random":
        return RandomSelector(rng=seed)
    if key == "max-entropy":
        return MaxMarginalEntropySelector()
    raise ValueError(
        f"unknown selector {name!r}; expected one of {', '.join(SELECTOR_NAMES)}"
    )


class RandomSelector(Selector):
    """Uniform random size-``k`` selection (section IV-C3 baseline)."""

    name = "Random"

    def __init__(self, rng: np.random.Generator | int | None = None):
        self._rng = np.random.default_rng(rng)

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        fact_ids = belief.fact_ids
        k = min(k, len(fact_ids))
        chosen = self._rng.choice(len(fact_ids), size=k, replace=False)
        return [fact_ids[index] for index in chosen]


class MaxMarginalEntropySelector(Selector):
    """Pick the ``k`` facts whose marginal truth value is most uncertain.

    This is the trivial solution of the single-task/single-worker
    special case discussed in related work [41]; it ignores fact
    correlations and expert accuracies, which is exactly what the full
    conditional-entropy objective adds.  Kept as an ablation.
    """

    name = "MaxEntropy"

    def select(
        self, belief: FactoredBelief, experts: Crowd, k: int
    ) -> list[int]:
        if k < 0:
            raise ValueError("k must be non-negative")
        scored = [
            (binary_entropy(belief.marginal(fact_id)), fact_id)
            for fact_id in belief.fact_ids
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [fact_id for _score, fact_id in scored[: min(k, len(scored))]]
