"""Crowd workers and the expert/preliminary split (paper Definition 1).

Every worker has an accuracy rate ``Pr_cr`` — the probability that any
single answer they give matches the ground truth.  The paper's error model
requires ``Pr_cr >= 1/2`` (answers from worse workers carry no usable
signal); a threshold ``theta`` then splits the crowd into *expert* workers
(``Pr_cr >= theta``, the checking tier CE) and *preliminary* workers
(the labeling tier CP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Error model lower bound on usable worker accuracy (paper section II-A).
MIN_ACCURACY = 0.5

#: Half-width of the epsilon-open interval accuracy *estimates* are
#: clamped into.  An estimate of exactly 0 or 1 makes ``P(A | o)``
#: degenerate downstream (a single contradicting answer then has zero
#: probability under every observation), so estimators squeeze into
#: ``[ACCURACY_EPSILON, 1 - ACCURACY_EPSILON]``.
ACCURACY_EPSILON = 1e-6


def clamp_accuracy(
    value: float, epsilon: float = ACCURACY_EPSILON
) -> float:
    """Squeeze an accuracy estimate into an epsilon-open interval.

    Declared accuracies of exactly 0 or 1 remain legal on
    :class:`Worker` (the paper's deterministic endpoints); this clamp is
    for *estimated* quantities that feed likelihoods.
    """
    if not 0.0 < epsilon < 0.5:
        raise ValueError(f"epsilon must lie in (0, 0.5), got {epsilon}")
    return float(min(max(value, epsilon), 1.0 - epsilon))


@dataclass(frozen=True, order=True)
class Worker:
    """A crowdsourcing worker with a known accuracy rate.

    The paper estimates ``Pr_cr`` from sample tasks with ground truth; in
    this reproduction accuracies either come from the dataset generator or
    from :func:`estimate_accuracy` against gold tasks.
    """

    worker_id: str
    accuracy: float

    def __post_init__(self) -> None:
        if (
            not isinstance(self.accuracy, (int, float))
            or not math.isfinite(self.accuracy)
            or not 0.0 <= self.accuracy <= 1.0
        ):
            raise ValueError(
                f"accuracy must be a finite number in [0, 1], got "
                f"{self.accuracy!r} for worker {self.worker_id!r}"
            )

    @property
    def is_usable(self) -> bool:
        """Whether the worker meets the error-model bound ``Pr_cr >= 1/2``."""
        return self.accuracy >= MIN_ACCURACY

    def with_accuracy(self, accuracy: float) -> "Worker":
        """Same worker id with a different accuracy (e.g. the trust
        layer's posterior mean replacing the declared rate)."""
        return Worker(worker_id=self.worker_id, accuracy=accuracy)


class Crowd:
    """An ordered collection of distinct workers."""

    def __init__(self, workers: Iterable[Worker]):
        workers = list(workers)
        seen: set[str] = set()
        for worker in workers:
            if worker.worker_id in seen:
                raise ValueError(f"duplicate worker_id {worker.worker_id!r}")
            seen.add(worker.worker_id)
        self._workers: tuple[Worker, ...] = tuple(workers)
        self._index = {
            worker.worker_id: position
            for position, worker in enumerate(self._workers)
        }

    @classmethod
    def from_accuracies(
        cls, accuracies: Sequence[float], prefix: str = "w"
    ) -> "Crowd":
        """Convenience constructor: workers named ``w0, w1, ...``."""
        return cls(
            Worker(worker_id=f"{prefix}{index}", accuracy=accuracy)
            for index, accuracy in enumerate(accuracies)
        )

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    def __getitem__(self, position: int) -> Worker:
        return self._workers[position]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Worker):
            return item.worker_id in self._index
        if isinstance(item, str):
            return item in self._index
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Crowd):
            return NotImplemented
        return self._workers == other._workers

    def __repr__(self) -> str:
        return f"Crowd(size={len(self)})"

    def by_id(self, worker_id: str) -> Worker:
        return self._workers[self._index[worker_id]]

    @property
    def worker_ids(self) -> tuple[str, ...]:
        return tuple(worker.worker_id for worker in self._workers)

    @property
    def accuracies(self) -> np.ndarray:
        """Accuracy rates in positional order."""
        return np.array([worker.accuracy for worker in self._workers])

    def usable(self) -> "Crowd":
        """The sub-crowd meeting the ``Pr_cr >= 1/2`` error-model bound."""
        return Crowd(worker for worker in self._workers if worker.is_usable)

    def split(self, theta: float) -> tuple["Crowd", "Crowd"]:
        """Split into ``(experts CE, preliminary CP)`` by threshold ``theta``.

        Paper Equation 1: ``CE = {cr | Pr_cr >= theta}``, ``CP = C - CE``.
        """
        if not 0.0 <= theta <= 1.0:
            raise ValueError(f"theta must lie in [0, 1], got {theta}")
        experts = [worker for worker in self._workers if worker.accuracy >= theta]
        preliminary = [
            worker for worker in self._workers if worker.accuracy < theta
        ]
        return Crowd(experts), Crowd(preliminary)


def estimate_accuracy(
    answers: Sequence[bool], gold: Sequence[bool], smoothing: float = 1.0
) -> float:
    """Estimate a worker's accuracy from gold-task answers.

    Uses Laplace smoothing so a worker who aced (or failed) a handful of
    gold tasks is not declared perfect (or useless) outright.  The
    estimate is additionally clamped into
    ``[ACCURACY_EPSILON, 1 - ACCURACY_EPSILON]``: under ``smoothing=0``
    the raw ratio can hit exactly 0 or 1, which would make the
    downstream answer likelihood ``P(A | o)`` degenerate.

    Parameters
    ----------
    answers, gold:
        Parallel sequences of the worker's answers and the ground truth.
    smoothing:
        Pseudo-count added to both correct and incorrect tallies.
    """
    if smoothing < 0.0:
        raise ValueError(f"smoothing must be non-negative, got {smoothing}")
    if len(answers) != len(gold):
        raise ValueError("answers and gold must be the same length")
    if not answers:
        return MIN_ACCURACY
    correct = sum(
        1 for answer, truth in zip(answers, gold) if answer == truth
    )
    estimate = (correct + smoothing) / (len(answers) + 2.0 * smoothing)
    return clamp_accuracy(estimate)
