"""Online expert trust supervision (circuit breakers + drift detection).

The paper's Definition 1 treats every CE worker's accuracy as known,
fixed and ``>= theta`` for the whole campaign; ``core/calibration``
checks this only *offline*, before the run starts.  Real expert crowds
drift: accounts get shared, attention fades, incentives change.  This
module makes worker reliability a *live, estimated* quantity:

* :class:`BetaTrust` — a per-worker Beta posterior over accuracy,
  updated online from gold-probe answers (weight 1) and from agreement
  with the post-update MAP labels (a configurable fractional weight,
  since the MAP itself can be wrong);
* a CUSUM drift statistic inside :class:`BetaTrust` that accumulates
  evidence of a downward shift away from the declared accuracy;
* :class:`CircuitBreaker` — the classic closed → open → half-open
  automaton per worker: tripped when the posterior lower confidence
  bound falls below the policy threshold (or the drift alarm fires) on
  enough consecutive evaluations, cooled down while quarantined, then
  probed with gold facts during half-open probation and either
  re-admitted with a fresh prior or re-opened;
* :class:`TrustSupervisor` — the bookkeeping object the resilient
  runtime drives: probe scheduling (seeded RNG, journaled), answer
  scoring, breaker evaluation, and JSON state round-tripping so a
  journal resume restores trust byte-identically.

The supervisor itself performs no I/O and touches no belief state; the
runtime (:mod:`repro.simulation.resilient`) applies its decisions via
the existing reassignment path and feeds the posterior means into the
trust-weighted Bayesian update.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from .workers import ACCURACY_EPSILON, Crowd, Worker, clamp_accuracy

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

BREAKER_STATES = frozenset({BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN})


@dataclass(frozen=True)
class TrustPolicy:
    """Knobs of the online trust supervision layer.

    Parameters
    ----------
    quarantine_lcb:
        Quarantine threshold on the posterior lower confidence bound.
        Deliberately *well below* the tiering theta: the LCB of an
        honest expert hovers far under their point estimate while
        observations are few, and a breaker that trips on noise costs
        more than it saves.  The CUSUM alarm, not this bound, is the
        fast detector for genuine mid-campaign drops.
    prior_strength:
        Pseudo-observation weight of the declared (calibrated) accuracy
        in the Beta prior.  Larger values trust the offline calibration
        longer; smaller values adapt faster.
    z:
        One-sided z-score of the lower confidence bound
        (1.645 == 95%).
    min_observations:
        Minimum accumulated observation weight before the breaker
        evaluates a worker at all (prevents tripping on a handful of
        unlucky answers).
    trip_confirmations:
        Consecutive below-threshold evaluations required to trip
        (squares the false-positive probability at the price of one
        round of extra latency per confirmation).
    agreement_weight:
        Observation weight of agreement with the post-update MAP label
        (gold probes weigh 1.0).  Fractional because the MAP label
        itself can be wrong.
    probe_rate:
        Per-round probability of injecting gold probes into the
        outgoing query set.
    max_probes_per_round:
        Gold probes injected when a probe round fires.
    cooldown_rounds:
        Rounds a tripped worker stays fully quarantined before
        half-open probation begins.
    probation_probes:
        Gold facts sent to a half-open worker per probation attempt.
    probation_pass:
        Correct probation answers required to re-admit
        (``<= probation_probes``).
    drift_threshold:
        CUSUM alarm level; the statistic accumulates
        ``declared - drift_slack - correctness`` per unit observation
        weight, clipped at zero.
    drift_slack:
        Allowed slack below the declared accuracy before drift
        accumulates.
    seed:
        Seed of the supervisor's probe RNG.
    """

    quarantine_lcb: float = 0.6
    prior_strength: float = 8.0
    z: float = 1.645
    min_observations: float = 8.0
    trip_confirmations: int = 2
    agreement_weight: float = 0.5
    probe_rate: float = 0.2
    max_probes_per_round: int = 1
    cooldown_rounds: int = 2
    probation_probes: int = 3
    probation_pass: int = 3
    drift_threshold: float = 5.0
    drift_slack: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.quarantine_lcb < 1.0:
            raise ValueError(
                f"quarantine_lcb must lie in (0, 1), got {self.quarantine_lcb}"
            )
        if self.prior_strength <= 0.0:
            raise ValueError("prior_strength must be positive")
        if self.z < 0.0:
            raise ValueError("z must be non-negative")
        if self.min_observations < 0.0:
            raise ValueError("min_observations must be non-negative")
        if self.trip_confirmations < 1:
            raise ValueError("trip_confirmations must be at least 1")
        if not 0.0 < self.agreement_weight <= 1.0:
            raise ValueError("agreement_weight must lie in (0, 1]")
        if not 0.0 <= self.probe_rate <= 1.0:
            raise ValueError("probe_rate must lie in [0, 1]")
        if self.max_probes_per_round < 1:
            raise ValueError("max_probes_per_round must be at least 1")
        if self.cooldown_rounds < 0:
            raise ValueError("cooldown_rounds must be non-negative")
        if self.probation_probes < 1:
            raise ValueError("probation_probes must be at least 1")
        if not 1 <= self.probation_pass <= self.probation_probes:
            raise ValueError(
                "probation_pass must lie in [1, probation_probes]"
            )
        if self.drift_threshold <= 0.0:
            raise ValueError("drift_threshold must be positive")
        if not 0.0 <= self.drift_slack < 1.0:
            raise ValueError("drift_slack must lie in [0, 1)")

    def to_dict(self) -> dict:
        return {
            "quarantine_lcb": self.quarantine_lcb,
            "prior_strength": self.prior_strength,
            "z": self.z,
            "min_observations": self.min_observations,
            "trip_confirmations": self.trip_confirmations,
            "agreement_weight": self.agreement_weight,
            "probe_rate": self.probe_rate,
            "max_probes_per_round": self.max_probes_per_round,
            "cooldown_rounds": self.cooldown_rounds,
            "probation_probes": self.probation_probes,
            "probation_pass": self.probation_pass,
            "drift_threshold": self.drift_threshold,
            "drift_slack": self.drift_slack,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrustPolicy":
        return cls(**dict(payload))


@dataclass
class BetaTrust:
    """Beta posterior over one worker's accuracy, plus a CUSUM drift
    statistic against the declared accuracy.

    ``observations`` counts accumulated evidence *weight* (gold probes
    weigh 1, MAP agreement less), not raw answers.
    """

    alpha: float
    beta: float
    declared: float
    observations: float = 0.0
    cusum: float = 0.0

    @classmethod
    def from_declared(cls, accuracy: float, strength: float) -> "BetaTrust":
        """Prior seeded from the declared (calibrated) accuracy."""
        accuracy = clamp_accuracy(accuracy)
        return cls(
            alpha=1.0 + strength * accuracy,
            beta=1.0 + strength * (1.0 - accuracy),
            declared=accuracy,
        )

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        total = self.alpha + self.beta
        return self.alpha * self.beta / (total * total * (total + 1.0))

    def lcb(self, z: float) -> float:
        """Normal-approximation lower confidence bound on the accuracy."""
        return max(0.0, self.mean - z * math.sqrt(self.variance))

    def observe(self, correct: bool, weight: float, slack: float) -> None:
        """Fold one correctness signal into the posterior and the CUSUM."""
        if weight <= 0.0:
            raise ValueError(f"weight must be positive, got {weight}")
        if correct:
            self.alpha += weight
        else:
            self.beta += weight
        self.observations += weight
        signal = 1.0 if correct else 0.0
        self.cusum = max(
            0.0, self.cusum + weight * (self.declared - slack - signal)
        )

    def reset(self, strength: float) -> None:
        """Back to a fresh prior (used on re-admission after probation)."""
        fresh = BetaTrust.from_declared(self.declared, strength)
        self.alpha = fresh.alpha
        self.beta = fresh.beta
        self.observations = 0.0
        self.cusum = 0.0

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "declared": self.declared,
            "observations": self.observations,
            "cusum": self.cusum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BetaTrust":
        return cls(
            alpha=float(payload["alpha"]),
            beta=float(payload["beta"]),
            declared=float(payload["declared"]),
            observations=float(payload.get("observations", 0.0)),
            cusum=float(payload.get("cusum", 0.0)),
        )


@dataclass
class CircuitBreaker:
    """Per-worker quarantine automaton: closed → open → half-open."""

    state: str = BREAKER_CLOSED
    opened_at_round: int = -1
    strikes: int = 0
    probes_passed: int = 0
    trip_reason: str = ""

    def __post_init__(self) -> None:
        if self.state not in BREAKER_STATES:
            raise ValueError(f"unknown breaker state {self.state!r}")

    def trip(self, round_index: int, reason: str) -> None:
        self.state = BREAKER_OPEN
        self.opened_at_round = round_index
        self.strikes = 0
        self.probes_passed = 0
        self.trip_reason = reason

    def to_half_open(self) -> None:
        self.state = BREAKER_HALF_OPEN
        self.probes_passed = 0

    def close(self) -> None:
        self.state = BREAKER_CLOSED
        self.opened_at_round = -1
        self.strikes = 0
        self.probes_passed = 0
        self.trip_reason = ""

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "opened_at_round": self.opened_at_round,
            "strikes": self.strikes,
            "probes_passed": self.probes_passed,
            "trip_reason": self.trip_reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CircuitBreaker":
        return cls(
            state=str(payload.get("state", BREAKER_CLOSED)),
            opened_at_round=int(payload.get("opened_at_round", -1)),
            strikes=int(payload.get("strikes", 0)),
            probes_passed=int(payload.get("probes_passed", 0)),
            trip_reason=str(payload.get("trip_reason", "")),
        )


@dataclass(frozen=True)
class TrustDecision:
    """One breaker transition the runtime must act on."""

    kind: str  # "quarantine" | "drift" | "probation" | "readmit" | "reopen"
    worker_id: str
    reason: str = ""


@dataclass(frozen=True)
class WorkerTrustSummary:
    """Point-in-time trust snapshot of one worker."""

    worker_id: str
    declared: float
    mean: float
    lcb: float
    observations: float
    breaker_state: str


@dataclass(frozen=True)
class TrustReport:
    """Campaign-level trust outcome attached to the run result."""

    workers: tuple[WorkerTrustSummary, ...]
    quarantines: int
    readmissions: int

    @property
    def quarantined_worker_ids(self) -> tuple[str, ...]:
        return tuple(
            summary.worker_id
            for summary in self.workers
            if summary.breaker_state != BREAKER_CLOSED
        )


def select_gold_probes(
    ground_truth: Mapping[int, bool],
    fraction: float = 0.1,
    seed: int = 0,
) -> dict[int, bool]:
    """Reserve a seeded fraction of known-truth facts as the probe pool.

    In production the probe pool is a vetted gold set; in simulation we
    carve it out of the dataset's ground truth the same way the offline
    calibration of :mod:`repro.core.calibration` assumes gold tasks
    exist.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
    if not ground_truth:
        return {}
    fact_ids = sorted(ground_truth)
    count = min(len(fact_ids), max(1, int(round(fraction * len(fact_ids)))))
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(fact_ids), size=count, replace=False)
    return {
        fact_ids[index]: bool(ground_truth[fact_ids[index]])
        for index in sorted(int(i) for i in chosen)
    }


class TrustSupervisor:
    """Live trust accounting for an expert panel.

    Parameters
    ----------
    experts:
        The initial checking panel; reserves swapped in later are
        registered via :meth:`register`.
    policy:
        Supervision knobs; defaults to :class:`TrustPolicy()`.
    gold:
        ``fact_id -> truth`` probe pool.  Empty means no probes — trust
        then runs on MAP agreement alone.
    """

    def __init__(
        self,
        experts: Crowd | Iterable[Worker],
        policy: TrustPolicy | None = None,
        gold: Mapping[int, bool] | None = None,
    ):
        self._policy = policy or TrustPolicy()
        self._gold = {
            int(fact_id): bool(truth)
            for fact_id, truth in (gold or {}).items()
        }
        self._rng = np.random.default_rng(self._policy.seed)
        self._trust: dict[str, BetaTrust] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Workers currently removed from the panel, by id.
        self._quarantined: dict[str, Worker] = {}
        self._pending_probes: tuple[int, ...] | None = None
        self.quarantines = 0
        self.readmissions = 0
        for worker in experts:
            self.register(worker)

    # ------------------------------------------------------------------
    # registry / accessors
    # ------------------------------------------------------------------

    @property
    def policy(self) -> TrustPolicy:
        return self._policy

    @property
    def gold_fact_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._gold))

    @property
    def pending_probes(self) -> tuple[int, ...] | None:
        """Probe facts chosen for the in-flight round (journaled so a
        resumed session replays the same probes)."""
        return self._pending_probes

    @property
    def quarantined_workers(self) -> tuple[Worker, ...]:
        return tuple(
            self._quarantined[worker_id]
            for worker_id in sorted(self._quarantined)
        )

    def register(self, worker: Worker) -> None:
        """Start (or keep) tracking a worker; idempotent."""
        if worker.worker_id not in self._trust:
            self._trust[worker.worker_id] = BetaTrust.from_declared(
                worker.accuracy, self._policy.prior_strength
            )
            self._breakers[worker.worker_id] = CircuitBreaker()

    def trust_of(self, worker_id: str) -> BetaTrust:
        return self._trust[worker_id]

    def breaker_of(self, worker_id: str) -> CircuitBreaker:
        return self._breakers[worker_id]

    def is_gold(self, fact_id: int) -> bool:
        return fact_id in self._gold

    def accuracy_overrides(self) -> dict[str, float]:
        """Posterior-mean accuracies for the trust-weighted update.

        Clamped into the epsilon-open interval so a collapsed posterior
        can never make ``P(A | o)`` degenerate.  The clamp is
        load-bearing for the log kernel, not just cosmetic: after
        enough correct gold answers ``alpha / (alpha + beta)`` rounds
        to exactly ``1.0`` in float64 (once ``alpha`` outgrows ``beta``
        by ~16 decimal orders), and an unclamped ``1.0`` would turn the
        kernel's ``log(1 - p)`` mismatch term into ``-inf`` — making a
        single disagreeing expert zero out every observation it
        touches.  With the clamp, every log term the sparse and dense
        log paths compute is finite, so the underflow guard in
        :func:`~repro.core.update.tempered_posterior` resolves in log
        space and never has to round-trip a flushed-to-zero linear
        product.
        """
        return {
            worker_id: clamp_accuracy(trust.mean, ACCURACY_EPSILON)
            for worker_id, trust in self._trust.items()
        }

    # ------------------------------------------------------------------
    # probe scheduling
    # ------------------------------------------------------------------

    def select_probes(self, exclude: Iterable[int] = ()) -> tuple[int, ...]:
        """Choose this round's gold probes (possibly none).

        The choice persists in :attr:`pending_probes` until
        :meth:`clear_probes`, so collection retries and journal resumes
        see the same probe set without re-advancing the RNG.
        """
        if self._pending_probes is not None:
            return self._pending_probes
        probes: tuple[int, ...] = ()
        candidates = sorted(set(self._gold) - set(exclude))
        if candidates and self._policy.probe_rate > 0.0:
            if float(self._rng.random()) < self._policy.probe_rate:
                count = min(
                    self._policy.max_probes_per_round, len(candidates)
                )
                chosen = self._rng.choice(
                    len(candidates), size=count, replace=False
                )
                probes = tuple(
                    candidates[index]
                    for index in sorted(int(i) for i in chosen)
                )
        self._pending_probes = probes
        return probes

    def clear_probes(self) -> None:
        self._pending_probes = None

    def probation_probes_for(self, worker_id: str) -> tuple[int, ...]:
        """Gold facts for one half-open worker's probation attempt."""
        candidates = sorted(self._gold)
        if not candidates:
            return ()
        count = min(self._policy.probation_probes, len(candidates))
        chosen = self._rng.choice(len(candidates), size=count, replace=False)
        return tuple(candidates[index] for index in sorted(int(i) for i in chosen))

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score_gold(
        self, worker_id: str, answers: Mapping[int, bool]
    ) -> tuple[int, int]:
        """Score gold-probe answers at weight 1; returns (correct, total)."""
        trust = self._trust[worker_id]
        correct = 0
        total = 0
        for fact_id in sorted(answers):
            if fact_id not in self._gold:
                raise KeyError(f"fact {fact_id} is not in the gold pool")
            hit = bool(answers[fact_id]) == self._gold[fact_id]
            trust.observe(hit, 1.0, self._policy.drift_slack)
            correct += int(hit)
            total += 1
        return correct, total

    def observe_round(
        self,
        answers_by_worker: Mapping[str, Mapping[int, bool]],
        map_labels: Mapping[int, bool],
    ) -> None:
        """Fold one completed round's campaign answers into trust.

        Facts in the gold pool are scored against gold at weight 1;
        everything else against the post-update MAP label at
        ``agreement_weight``.
        """
        for worker_id in sorted(answers_by_worker):
            trust = self._trust.get(worker_id)
            if trust is None:
                continue
            answers = answers_by_worker[worker_id]
            for fact_id in sorted(answers):
                answer = bool(answers[fact_id])
                if fact_id in self._gold:
                    trust.observe(
                        answer == self._gold[fact_id],
                        1.0,
                        self._policy.drift_slack,
                    )
                elif fact_id in map_labels:
                    trust.observe(
                        answer == bool(map_labels[fact_id]),
                        self._policy.agreement_weight,
                        self._policy.drift_slack,
                    )

    # ------------------------------------------------------------------
    # breaker evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self, round_index: int, active_worker_ids: Iterable[str]
    ) -> list[TrustDecision]:
        """Advance every breaker one tick; returns transitions to act on.

        ``quarantine`` decisions ask the runtime to pull the worker from
        the panel; ``probation`` decisions ask it to send the worker
        gold probes and report back via :meth:`score_probation`.
        """
        policy = self._policy
        decisions: list[TrustDecision] = []
        active = set(active_worker_ids)
        for worker_id in sorted(self._breakers):
            breaker = self._breakers[worker_id]
            trust = self._trust[worker_id]
            if breaker.state == BREAKER_CLOSED:
                if worker_id not in active:
                    continue
                if trust.observations < policy.min_observations:
                    continue
                lcb = trust.lcb(policy.z)
                reasons = []
                if lcb < policy.quarantine_lcb:
                    reasons.append(
                        f"lcb {lcb:.3f} < {policy.quarantine_lcb:.3f}"
                    )
                if trust.cusum > policy.drift_threshold:
                    reasons.append(
                        f"cusum {trust.cusum:.2f} > "
                        f"{policy.drift_threshold:.2f}"
                    )
                if reasons:
                    breaker.strikes += 1
                    reason = "; ".join(reasons)
                    if breaker.strikes >= policy.trip_confirmations:
                        breaker.trip(round_index, reason)
                        self.quarantines += 1
                        decisions.append(
                            TrustDecision("quarantine", worker_id, reason)
                        )
                    else:
                        decisions.append(
                            TrustDecision(
                                "drift",
                                worker_id,
                                f"strike {breaker.strikes}/"
                                f"{policy.trip_confirmations}: {reason}",
                            )
                        )
                else:
                    breaker.strikes = 0
            elif breaker.state == BREAKER_OPEN:
                if (
                    round_index - breaker.opened_at_round
                    >= policy.cooldown_rounds
                ):
                    breaker.to_half_open()
                    decisions.append(
                        TrustDecision(
                            "probation",
                            worker_id,
                            f"cooldown elapsed ({policy.cooldown_rounds} "
                            "rounds); entering half-open probation",
                        )
                    )
            elif breaker.state == BREAKER_HALF_OPEN:
                # still waiting on probation probes (e.g. a timed-out
                # attempt); ask the runtime to probe again
                decisions.append(
                    TrustDecision(
                        "probation", worker_id, "probation pending"
                    )
                )
        return decisions

    def quarantine_worker(self, worker: Worker) -> None:
        """Record that the runtime pulled ``worker`` from the panel."""
        self._quarantined[worker.worker_id] = worker

    def score_probation(
        self,
        worker_id: str,
        answers: Mapping[int, bool],
        round_index: int,
    ) -> TrustDecision:
        """Judge one probation attempt; missing answers count as misses.

        Re-admission resets the posterior to a fresh declared-accuracy
        prior (clean slate — the polluted history would otherwise trip
        the breaker again immediately, even for a recovered worker).
        """
        policy = self._policy
        breaker = self._breakers[worker_id]
        correct, _total = (
            self.score_gold(worker_id, answers) if answers else (0, 0)
        )
        breaker.probes_passed += correct
        if breaker.probes_passed >= policy.probation_pass:
            breaker.close()
            self._trust[worker_id].reset(policy.prior_strength)
            self._quarantined.pop(worker_id, None)
            self.readmissions += 1
            return TrustDecision(
                "readmit",
                worker_id,
                f"passed probation ({correct} correct gold probes)",
            )
        breaker.trip(
            round_index,
            f"failed probation ({correct}/{policy.probation_probes} "
            "gold probes correct)",
        )
        return TrustDecision(
            "reopen",
            worker_id,
            f"failed probation ({correct}/{policy.probation_probes})",
        )

    # ------------------------------------------------------------------
    # reporting / state
    # ------------------------------------------------------------------

    def report(self) -> TrustReport:
        summaries = tuple(
            WorkerTrustSummary(
                worker_id=worker_id,
                declared=self._trust[worker_id].declared,
                mean=self._trust[worker_id].mean,
                lcb=self._trust[worker_id].lcb(self._policy.z),
                observations=self._trust[worker_id].observations,
                breaker_state=self._breakers[worker_id].state,
            )
            for worker_id in sorted(self._trust)
        )
        return TrustReport(
            workers=summaries,
            quarantines=self.quarantines,
            readmissions=self.readmissions,
        )

    def get_state(self) -> dict:
        """JSON-compatible snapshot for the session journal."""
        return {
            "policy": self._policy.to_dict(),
            "gold": [
                [fact_id, self._gold[fact_id]]
                for fact_id in sorted(self._gold)
            ],
            "trust": {
                worker_id: trust.to_dict()
                for worker_id, trust in self._trust.items()
            },
            "breakers": {
                worker_id: breaker.to_dict()
                for worker_id, breaker in self._breakers.items()
            },
            "quarantined": [
                [worker.worker_id, worker.accuracy]
                for worker in self.quarantined_workers
            ],
            "pending_probes": (
                list(self._pending_probes)
                if self._pending_probes is not None
                else None
            ),
            "quarantines": self.quarantines,
            "readmissions": self.readmissions,
            "rng": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "TrustSupervisor":
        """Rebuild a supervisor from :meth:`get_state` output."""
        supervisor = cls(
            (),
            policy=TrustPolicy.from_dict(state["policy"]),
            gold={
                int(fact_id): bool(truth)
                for fact_id, truth in state.get("gold", ())
            },
        )
        supervisor._trust = {
            str(worker_id): BetaTrust.from_dict(payload)
            for worker_id, payload in state.get("trust", {}).items()
        }
        supervisor._breakers = {
            str(worker_id): CircuitBreaker.from_dict(payload)
            for worker_id, payload in state.get("breakers", {}).items()
        }
        supervisor._quarantined = {
            str(worker_id): Worker(str(worker_id), float(accuracy))
            for worker_id, accuracy in state.get("quarantined", ())
        }
        pending = state.get("pending_probes")
        supervisor._pending_probes = (
            tuple(int(fact_id) for fact_id in pending)
            if pending is not None
            else None
        )
        supervisor.quarantines = int(state.get("quarantines", 0))
        supervisor.readmissions = int(state.get("readmissions", 0))
        supervisor._rng.bit_generator.state = state["rng"]
        return supervisor
