"""Observations and belief states (paper section II-A, Table I).

For ``n`` binary facts there are ``2**n`` *observations* — mutually
exclusive joint truth assignments, exactly one of which is the ground
truth.  A *belief state* is a probability distribution over the
observation space; the whole HC framework is about sharpening this
distribution with crowdsourced answers.

Encoding
--------
Observation ``s`` (an integer in ``[0, 2**n)``) assigns ``True`` to the
fact at position ``i`` iff bit ``i`` of ``s`` is set (little-endian).
``truth_table(n)[s, i]`` materializes that bit matrix.
"""

from __future__ import annotations

import warnings
from functools import lru_cache
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .facts import FactSet

#: Probabilities below this are treated as zero when normalizing and in
#: entropy sums (0 * log 0 == 0).
_EPSILON = 1e-300

#: Refuse to materialize observation spaces larger than this many facts;
#: 2**24 float64 already costs ~128 MiB.
MAX_FACTS_PER_SPACE = 24


@lru_cache(maxsize=64)
def truth_table(num_facts: int) -> np.ndarray:
    """The ``(2**n, n)`` boolean matrix of all joint truth assignments.

    Row ``s`` is observation ``s``; column ``i`` is the truth value that
    observation assigns to the fact at position ``i``.
    """
    if num_facts < 0:
        raise ValueError("num_facts must be non-negative")
    if num_facts > MAX_FACTS_PER_SPACE:
        raise ValueError(
            f"observation space for {num_facts} facts is too large "
            f"(limit {MAX_FACTS_PER_SPACE})"
        )
    states = np.arange(1 << num_facts, dtype=np.int64)
    bits = (states[:, None] >> np.arange(num_facts, dtype=np.int64)) & 1
    table = bits.astype(bool)
    table.setflags(write=False)
    return table


def observation_index(values: Sequence[bool]) -> int:
    """Encode a truth assignment (position order) into an observation index."""
    index = 0
    for position, value in enumerate(values):
        if value:
            index |= 1 << position
    return index


class BeliefState:
    """A probability distribution over the observations of a fact set.

    Parameters
    ----------
    facts:
        The facts this belief is about.  ``len(facts)`` determines the
        size ``2**n`` of the observation space.
    probabilities:
        Array of ``2**n`` non-negative weights.  Normalized on
        construction; a zero-sum vector is rejected.

    Notes
    -----
    Instances are cheap value objects: update operations return new
    belief states instead of mutating in place, so selection algorithms
    can branch on hypothetical answers safely.
    """

    def __init__(self, facts: FactSet, probabilities: np.ndarray):
        probabilities = np.asarray(probabilities, dtype=np.float64)
        expected = 1 << len(facts)
        if probabilities.shape != (expected,):
            raise ValueError(
                f"expected {expected} probabilities for {len(facts)} facts, "
                f"got shape {probabilities.shape}"
            )
        if np.any(probabilities < -1e-12):
            raise ValueError("probabilities must be non-negative")
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if total <= _EPSILON:
            raise ValueError("probabilities sum to zero; belief is undefined")
        self._facts = facts
        self._probs = probabilities / total
        self._probs.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def uniform(cls, facts: FactSet) -> "BeliefState":
        """The maximum-entropy belief (used by the NO-HC baseline)."""
        size = 1 << len(facts)
        return cls(facts, np.full(size, 1.0 / size))

    @classmethod
    def from_normalized(
        cls, facts: FactSet, probabilities: np.ndarray
    ) -> "BeliefState":
        """Rebuild from probabilities a prior belief already normalized.

        ``__init__`` renormalizes defensively, which perturbs values by
        one ulp when the stored sum is ``1 ± epsilon`` — enough to break
        bitwise reproducibility of checkpoint restores.  This
        constructor trusts the values verbatim (after the same shape /
        non-negativity / non-degenerate checks), so serialization
        round-trips are exact.
        """
        state = cls(facts, probabilities)
        exact = np.asarray(probabilities, dtype=np.float64).copy()
        exact.setflags(write=False)
        state._probs = exact
        return state

    @classmethod
    def from_marginals(
        cls,
        facts: FactSet,
        marginals: Sequence[float],
        on_degenerate: Callable[[], None] | None = None,
    ) -> "BeliefState":
        """Product belief from per-fact marginals ``P(f_i)`` (paper Eq. 15).

        This is how preliminary-crowd answers initialize the belief: the
        joint is the independent product of the per-fact vote fractions.

        A degenerate set of marginals (e.g. some fact with marginals
        exactly 0 *and* 1 in a contradictory pattern, or a product that
        underflows everywhere) leaves no observation with mass.  The
        fallback is the exact uniform belief — the honest
        maximum-entropy answer to "the initializer told us nothing" —
        and it is never silent: a ``RuntimeWarning`` is raised and
        ``on_degenerate`` (when given) is invoked so callers can record
        a ``degenerate_marginals`` incident.
        """
        marginals = np.asarray(marginals, dtype=np.float64)
        if marginals.shape != (len(facts),):
            raise ValueError("need one marginal per fact")
        if np.any(marginals < 0) or np.any(marginals > 1):
            raise ValueError("marginals must lie in [0, 1]")
        table = truth_table(len(facts))
        joint = np.where(table, marginals, 1.0 - marginals).prod(axis=1)
        total = float(joint.sum())
        # `not (total > eps)` rather than `total <= eps`: NaN marginals
        # (e.g. an aggregator's 0/0) pass the range check above and must
        # land in the fallback, not propagate through the belief.
        if not total > _EPSILON:
            warnings.warn(
                "degenerate marginals: the joint product has zero mass "
                "everywhere; falling back to the uniform belief",
                RuntimeWarning,
                stacklevel=2,
            )
            if on_degenerate is not None:
                on_degenerate()
            joint = np.full(joint.size, 1.0 / joint.size)
        return cls(facts, joint)

    @classmethod
    def from_mapping(
        cls, facts: FactSet, table: Mapping[Sequence[bool], float]
    ) -> "BeliefState":
        """Belief from an explicit ``{assignment: probability}`` mapping.

        Assignments are tuples of truth values in positional order.
        Unlisted observations get probability zero.  Mirrors the paper's
        Table I presentation.
        """
        probs = np.zeros(1 << len(facts))
        for assignment, probability in table.items():
            if len(assignment) != len(facts):
                raise ValueError("assignment length must equal fact count")
            probs[observation_index(assignment)] = probability
        return cls(facts, probs)

    @classmethod
    def point_mass(cls, facts: FactSet, assignment: Sequence[bool]) -> "BeliefState":
        """A certain belief concentrated on one observation."""
        probs = np.zeros(1 << len(facts))
        probs[observation_index(assignment)] = 1.0
        return cls(facts, probs)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def facts(self) -> FactSet:
        return self._facts

    @property
    def probabilities(self) -> np.ndarray:
        """The normalized observation distribution (read-only view)."""
        return self._probs

    @property
    def num_facts(self) -> int:
        return len(self._facts)

    @property
    def num_observations(self) -> int:
        return self._probs.size

    def probability_of(self, assignment: Sequence[bool]) -> float:
        """``P(o)`` for an explicit truth assignment."""
        return float(self._probs[observation_index(assignment)])

    def marginal(self, fact_id: int) -> float:
        """``P(f) = sum over positive models of f`` (paper Eq. 2)."""
        position = self._facts.position_of(fact_id)
        column = truth_table(self.num_facts)[:, position]
        return float(self._probs[column].sum())

    def marginals(self) -> np.ndarray:
        """All per-fact marginals ``P(f_i)`` in positional order."""
        return self._probs @ truth_table(self.num_facts)

    def map_observation(self) -> int:
        """Index of the most probable observation ``o*`` (paper Eq. 20)."""
        return int(np.argmax(self._probs))

    def map_assignment(self) -> np.ndarray:
        """Truth values of the MAP observation, positional order."""
        return truth_table(self.num_facts)[self.map_observation()].copy()

    def map_labels(self) -> dict[int, bool]:
        """Finalized labels ``{fact_id: truth}`` from the MAP observation."""
        assignment = self.map_assignment()
        return {
            fact.fact_id: bool(assignment[position])
            for position, fact in enumerate(self._facts)
        }

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def with_probabilities(self, probabilities: np.ndarray) -> "BeliefState":
        """A new belief over the same facts with different weights."""
        return BeliefState(self._facts, probabilities)

    def reweighted(self, likelihood: np.ndarray) -> "BeliefState":
        """Bayes update: posterior ∝ prior × likelihood over observations."""
        likelihood = np.asarray(likelihood, dtype=np.float64)
        if likelihood.shape != self._probs.shape:
            raise ValueError("likelihood must have one entry per observation")
        return BeliefState(self._facts, self._probs * likelihood)

    def log_reweighted(self, log_likelihood: np.ndarray) -> "BeliefState":
        """Bayes update from a *log*-likelihood vector.

        The normalization never leaves log space: the posterior is
        ``exp(lp - logsumexp(lp))`` with ``lp = log prior + log
        likelihood``, computed with the peak-shifted logsumexp.  (The
        previous implementation exponentiated the peak-shifted vector
        and let ``__init__`` renormalize the result *in linear space* —
        a round-trip that the guard path exists to avoid.)  Posteriors
        therefore survive likelihoods whose linear products underflow
        float64 — the large-panel / near-0/1-accuracy regime.  ``-inf``
        entries (exactly-zero likelihood) are allowed; raises
        ``ValueError`` when every entry is ``-inf`` (zero evidence, the
        log-space analogue of a zero-sum posterior).
        """
        log_likelihood = np.asarray(log_likelihood, dtype=np.float64)
        if log_likelihood.shape != self._probs.shape:
            raise ValueError(
                "log likelihood must have one entry per observation"
            )
        with np.errstate(divide="ignore"):
            log_posterior = np.log(self._probs) + log_likelihood
        peak = float(log_posterior.max())
        if not np.isfinite(peak):
            raise ValueError(
                "log likelihood is -inf everywhere the belief has mass; "
                "posterior is undefined"
            )
        log_norm = peak + float(
            np.log(np.exp(log_posterior - peak).sum())
        )
        return BeliefState.from_normalized(
            self._facts, np.exp(log_posterior - log_norm)
        )

    def __repr__(self) -> str:
        return (
            f"BeliefState(num_facts={self.num_facts}, "
            f"map={self.map_observation()})"
        )


class FactoredBelief:
    """A belief over many facts that factors into independent groups.

    The paper's evaluation forms 5-fact tasks out of single-fact tweets;
    different tasks are independent while facts inside a task are
    correlated.  This class keeps one :class:`BeliefState` per group and
    maps global fact ids to their owning group, so the conditional
    entropy of the whole data set decomposes into per-group terms.
    """

    def __init__(self, groups: Iterable[BeliefState]):
        self._groups: list[BeliefState] = list(groups)
        if not self._groups:
            raise ValueError("FactoredBelief needs at least one group")
        self._group_of: dict[int, int] = {}
        for group_index, belief in enumerate(self._groups):
            for fact in belief.facts:
                if fact.fact_id in self._group_of:
                    raise ValueError(
                        f"fact {fact.fact_id} appears in multiple groups"
                    )
                self._group_of[fact.fact_id] = group_index

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator["BeliefState"]:
        return iter(self._groups)

    def __getitem__(self, group_index: int) -> BeliefState:
        return self._groups[group_index]

    @property
    def num_facts(self) -> int:
        return len(self._group_of)

    @property
    def fact_ids(self) -> list[int]:
        """All fact ids, group by group, positional order inside a group."""
        return [fact.fact_id for belief in self._groups for fact in belief.facts]

    def group_index_of(self, fact_id: int) -> int:
        """Index of the group that owns ``fact_id``."""
        return self._group_of[fact_id]

    def group_of(self, fact_id: int) -> BeliefState:
        """The group belief that owns ``fact_id``."""
        return self._groups[self._group_of[fact_id]]

    def replace_group(self, group_index: int, belief: BeliefState) -> None:
        """Swap in an updated group belief (same facts required)."""
        if belief.facts != self._groups[group_index].facts:
            raise ValueError("replacement belief must cover the same facts")
        self._groups[group_index] = belief

    def add_group(self, belief: BeliefState) -> int:
        """Append a newly formed group (mid-campaign group formation).

        The streaming runtime seals groups as their preliminary votes
        arrive, so a campaign's factored belief grows over time.  New
        groups get the next index — existing indices (and therefore any
        selector caches keyed on them) are untouched.  Returns the new
        group's index.
        """
        for fact in belief.facts:
            if fact.fact_id in self._group_of:
                raise ValueError(
                    f"fact {fact.fact_id} already belongs to group "
                    f"{self._group_of[fact.fact_id]}"
                )
        self._groups.append(belief)
        group_index = len(self._groups) - 1
        for fact in belief.facts:
            self._group_of[fact.fact_id] = group_index
        return group_index

    def marginal(self, fact_id: int) -> float:
        return self.group_of(fact_id).marginal(fact_id)

    def map_labels(self) -> dict[int, bool]:
        """Finalized labels for every fact across all groups."""
        labels: dict[int, bool] = {}
        for belief in self._groups:
            labels.update(belief.map_labels())
        return labels

    def copy(self) -> "FactoredBelief":
        """Shallow copy (belief states themselves are immutable)."""
        return FactoredBelief(self._groups)
