"""Belief initialization and Bayesian update (paper section III-A).

* :func:`initialize_from_votes` builds the initial belief from preliminary
  workers' votes, either as the independent-product form of Eq. 15/16 or
  from externally supplied per-fact posteriors (e.g. an EBCC run).
* :func:`update_with_answer_set` / :func:`update_with_family` apply
  Lemma 3: the posterior over observations after seeing expert answers,
  ``P(o | A) = P(o) P(A | o) / P(A)``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .answers import (
    AnswerFamily,
    AnswerSet,
    answer_set_likelihood,
    family_likelihood,
    log_answer_set_likelihood,
    log_family_likelihood,
)
from .facts import FactSet
from .kernel import (
    SparseBeliefState,
    sparse_from_marginals,
    sparse_log_answer_set_likelihood,
    sparse_log_family_likelihood,
)
from .observations import BeliefState


class InconsistentEvidenceError(ValueError):
    """Raised when the observed answers have zero probability under the
    current belief (cannot condition on a null event)."""


def initialize_from_votes(
    facts: FactSet,
    yes_fractions: Mapping[int, float] | Sequence[float],
    smoothing: float = 0.01,
    epsilon: float = 0.0,
    on_degenerate=None,
) -> BeliefState:
    """Initial belief from preliminary-crowd vote fractions (Eq. 15/16).

    Parameters
    ----------
    facts:
        The facts of one task group.
    yes_fractions:
        For each fact, the fraction of preliminary workers answering
        "Yes" (or any aggregator's posterior ``P(f)``).  Either a mapping
        ``fact_id -> fraction`` or a sequence in positional order.
    smoothing:
        Fractions are squeezed into ``[smoothing, 1 - smoothing]`` so a
        unanimous preliminary crowd does not produce an irrecoverable
        point mass (experts could then never overturn a wrong label).
        Must lie strictly inside ``(0, 0.5)``: ``smoothing=0`` would
        leave exactly that irrecoverable point mass in place, and the
        checking loop could then die on the first contradicting expert.
    epsilon:
        Truncation budget of the sparse belief kernel.  ``0`` (the
        default) builds the exact dense :class:`BeliefState`;
        a positive value builds a
        :class:`~repro.core.kernel.SparseBeliefState` whose updates drop
        negligible-mass states within a total-variation bound of
        ``epsilon`` per update.
    on_degenerate:
        Callback invoked if the marginal product is degenerate and the
        belief falls back to uniform (``degenerate_marginals`` incident).
    """
    if isinstance(yes_fractions, Mapping):
        ordered = [yes_fractions[fact.fact_id] for fact in facts]
    else:
        ordered = list(yes_fractions)
        if len(ordered) != len(facts):
            raise ValueError("need one vote fraction per fact")
    if not 0.0 < smoothing < 0.5:
        raise ValueError(
            f"smoothing must lie in (0, 0.5), got {smoothing}"
        )
    marginals = np.clip(np.asarray(ordered, dtype=np.float64),
                        smoothing, 1.0 - smoothing)
    if epsilon > 0.0:
        return sparse_from_marginals(
            facts, marginals, epsilon, on_degenerate=on_degenerate
        )
    return BeliefState.from_marginals(
        facts, marginals, on_degenerate=on_degenerate
    )


#: Evidence below this is treated as potential float64 underflow rather
#: than genuine inconsistency: the update retries in log space before
#: concluding the answers truly have zero probability.  Comfortably
#: above the subnormal range (~1e-308) where products lose precision.
EVIDENCE_UNDERFLOW_GUARD = 1e-250


def update_with_answer_set(
    belief: BeliefState, answer_set: AnswerSet
) -> BeliefState:
    """Posterior after one worker's answer set (Lemma 3, Eq. 19)."""
    if isinstance(belief, SparseBeliefState):
        return _sparse_posterior(
            belief,
            sparse_log_answer_set_likelihood(
                belief.facts, belief.support, answer_set
            ),
        )
    likelihood = answer_set_likelihood(belief, answer_set)
    return _posterior(
        belief, likelihood,
        lambda: log_answer_set_likelihood(belief, answer_set),
    )


def update_with_family(belief: BeliefState, family: AnswerFamily) -> BeliefState:
    """Posterior after a whole answer family (Eq. 23).

    Workers are conditionally independent given the observation, so the
    family likelihood is the product of per-worker likelihoods.
    """
    if isinstance(belief, SparseBeliefState):
        return _sparse_posterior(
            belief,
            sparse_log_family_likelihood(
                belief.facts, belief.support, family
            ),
        )
    likelihood = family_likelihood(belief, family)
    return _posterior(
        belief, likelihood, lambda: log_family_likelihood(belief, family)
    )


def _sparse_posterior(
    belief: "SparseBeliefState", log_likelihood: np.ndarray
) -> BeliefState:
    """Pure log-space update on the sparse kernel (no guard band needed:
    sums of logs cannot underflow, so zero evidence *is* inconsistency)."""
    try:
        return belief.log_posterior(log_likelihood)
    except ValueError as error:
        raise InconsistentEvidenceError(
            "observed answers have zero probability under the current "
            "belief"
        ) from error


def _posterior(
    belief: BeliefState,
    likelihood: np.ndarray,
    log_likelihood_fn=None,
) -> BeliefState:
    """Linear-space Bayes update with a log-space underflow fallback.

    The linear path runs first and is kept bitwise-identical to the
    historical behaviour whenever the evidence is healthy (checkpoint
    resume depends on that).  Only when the evidence drops into the
    underflow guard band does the update recompute in log space, which
    distinguishes "the product underflowed" from "the answers are truly
    impossible".
    """
    evidence = float(belief.probabilities @ likelihood)
    if evidence > EVIDENCE_UNDERFLOW_GUARD:
        return belief.reweighted(likelihood)
    if log_likelihood_fn is not None:
        try:
            return belief.log_reweighted(log_likelihood_fn())
        except ValueError:
            pass
    raise InconsistentEvidenceError(
        "observed answers have zero probability under the current belief"
    )


# ----------------------------------------------------------------------
# tempered fallback (graceful degradation on zero evidence)
# ----------------------------------------------------------------------

#: Default likelihood floor used by the tempered updates.
TEMPER_FLOOR = 1e-9


def tempered_posterior(
    belief: BeliefState,
    likelihood: np.ndarray,
    floor: float = TEMPER_FLOOR,
    log_likelihood_fn=None,
) -> tuple[BeliefState, bool]:
    """Bayes update that survives zero-evidence answer patterns.

    When ``P(A) > 0`` this is the exact Lemma-3 posterior and the second
    return value is ``False``.  When the evidence is zero, the update
    first retries in log space (when ``log_likelihood_fn`` is supplied)
    to distinguish float64 underflow from genuine inconsistency; an
    underflowed-but-consistent update stays exact and is *not* counted
    as tempered.  Only when the answers truly contradict every
    observation the belief still allows (e.g. an accuracy-1.0 worker
    contradicting a point mass) is the likelihood floored at ``floor``
    times its largest entry (or ``floor`` outright if it is identically
    zero) and renormalized, which re-smooths the posterior marginals
    instead of crashing; the second return value is then ``True`` so
    callers can record the incident.
    """
    if not 0.0 < floor < 1.0:
        raise ValueError(f"floor must lie in (0, 1), got {floor}")
    likelihood = np.asarray(likelihood, dtype=np.float64)
    if isinstance(belief, SparseBeliefState):
        with np.errstate(divide="ignore"):
            log_likelihood = np.log(likelihood[belief.support])
        return _sparse_tempered(belief, log_likelihood, floor)
    evidence = float(belief.probabilities @ likelihood)
    if evidence > EVIDENCE_UNDERFLOW_GUARD:
        return belief.reweighted(likelihood), False
    if log_likelihood_fn is not None:
        try:
            return belief.log_reweighted(log_likelihood_fn()), False
        except ValueError:
            pass
    elif evidence > 0.0:
        return belief.reweighted(likelihood), False
    scale = float(likelihood.max())
    floored = likelihood + (scale if scale > 0.0 else 1.0) * floor
    return belief.reweighted(floored), True


def _sparse_tempered(
    belief: "SparseBeliefState",
    log_likelihood: np.ndarray,
    floor: float,
) -> tuple[BeliefState, bool]:
    """Sparse-kernel tempered update, fully in log space.

    Log-space sums cannot underflow, so a failed update means the
    answers genuinely contradict every supported observation; only then
    is the (support-restricted) likelihood floored and retried.
    """
    if not 0.0 < floor < 1.0:
        raise ValueError(f"floor must lie in (0, 1), got {floor}")
    try:
        return belief.log_posterior(log_likelihood), False
    except ValueError:
        pass
    likelihood = np.exp(log_likelihood)
    scale = float(likelihood.max())
    floored = likelihood + (scale if scale > 0.0 else 1.0) * floor
    return belief.log_posterior(np.log(floored)), True


def tempered_update_with_answer_set(
    belief: BeliefState, answer_set: AnswerSet, floor: float = TEMPER_FLOOR
) -> tuple[BeliefState, bool]:
    """:func:`update_with_answer_set` with the tempered fallback."""
    if isinstance(belief, SparseBeliefState):
        return _sparse_tempered(
            belief,
            sparse_log_answer_set_likelihood(
                belief.facts, belief.support, answer_set
            ),
            floor,
        )
    likelihood = answer_set_likelihood(belief, answer_set)
    return tempered_posterior(
        belief, likelihood, floor=floor,
        log_likelihood_fn=lambda: log_answer_set_likelihood(belief, answer_set),
    )


def tempered_update_with_family(
    belief: BeliefState, family: AnswerFamily, floor: float = TEMPER_FLOOR
) -> tuple[BeliefState, bool]:
    """:func:`update_with_family` with the tempered fallback."""
    if isinstance(belief, SparseBeliefState):
        return _sparse_tempered(
            belief,
            sparse_log_family_likelihood(
                belief.facts, belief.support, family
            ),
            floor,
        )
    likelihood = family_likelihood(belief, family)
    return tempered_posterior(
        belief, likelihood, floor=floor,
        log_likelihood_fn=lambda: log_family_likelihood(belief, family),
    )
