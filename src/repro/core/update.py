"""Belief initialization and Bayesian update (paper section III-A).

* :func:`initialize_from_votes` builds the initial belief from preliminary
  workers' votes, either as the independent-product form of Eq. 15/16 or
  from externally supplied per-fact posteriors (e.g. an EBCC run).
* :func:`update_with_answer_set` / :func:`update_with_family` apply
  Lemma 3: the posterior over observations after seeing expert answers,
  ``P(o | A) = P(o) P(A | o) / P(A)``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .answers import (
    AnswerFamily,
    AnswerSet,
    answer_set_likelihood,
    family_likelihood,
    log_answer_set_likelihood,
    log_family_likelihood,
)
from .facts import FactSet
from .observations import BeliefState


class InconsistentEvidenceError(ValueError):
    """Raised when the observed answers have zero probability under the
    current belief (cannot condition on a null event)."""


def initialize_from_votes(
    facts: FactSet,
    yes_fractions: Mapping[int, float] | Sequence[float],
    smoothing: float = 0.01,
) -> BeliefState:
    """Initial belief from preliminary-crowd vote fractions (Eq. 15/16).

    Parameters
    ----------
    facts:
        The facts of one task group.
    yes_fractions:
        For each fact, the fraction of preliminary workers answering
        "Yes" (or any aggregator's posterior ``P(f)``).  Either a mapping
        ``fact_id -> fraction`` or a sequence in positional order.
    smoothing:
        Fractions are squeezed into ``[smoothing, 1 - smoothing]`` so a
        unanimous preliminary crowd does not produce an irrecoverable
        point mass (experts could then never overturn a wrong label).
        Must lie strictly inside ``(0, 0.5)``: ``smoothing=0`` would
        leave exactly that irrecoverable point mass in place, and the
        checking loop could then die on the first contradicting expert.
    """
    if isinstance(yes_fractions, Mapping):
        ordered = [yes_fractions[fact.fact_id] for fact in facts]
    else:
        ordered = list(yes_fractions)
        if len(ordered) != len(facts):
            raise ValueError("need one vote fraction per fact")
    if not 0.0 < smoothing < 0.5:
        raise ValueError(
            f"smoothing must lie in (0, 0.5), got {smoothing}"
        )
    marginals = np.clip(np.asarray(ordered, dtype=np.float64),
                        smoothing, 1.0 - smoothing)
    return BeliefState.from_marginals(facts, marginals)


#: Evidence below this is treated as potential float64 underflow rather
#: than genuine inconsistency: the update retries in log space before
#: concluding the answers truly have zero probability.  Comfortably
#: above the subnormal range (~1e-308) where products lose precision.
EVIDENCE_UNDERFLOW_GUARD = 1e-250


def update_with_answer_set(
    belief: BeliefState, answer_set: AnswerSet
) -> BeliefState:
    """Posterior after one worker's answer set (Lemma 3, Eq. 19)."""
    likelihood = answer_set_likelihood(belief, answer_set)
    return _posterior(
        belief, likelihood,
        lambda: log_answer_set_likelihood(belief, answer_set),
    )


def update_with_family(belief: BeliefState, family: AnswerFamily) -> BeliefState:
    """Posterior after a whole answer family (Eq. 23).

    Workers are conditionally independent given the observation, so the
    family likelihood is the product of per-worker likelihoods.
    """
    likelihood = family_likelihood(belief, family)
    return _posterior(
        belief, likelihood, lambda: log_family_likelihood(belief, family)
    )


def _posterior(
    belief: BeliefState,
    likelihood: np.ndarray,
    log_likelihood_fn=None,
) -> BeliefState:
    """Linear-space Bayes update with a log-space underflow fallback.

    The linear path runs first and is kept bitwise-identical to the
    historical behaviour whenever the evidence is healthy (checkpoint
    resume depends on that).  Only when the evidence drops into the
    underflow guard band does the update recompute in log space, which
    distinguishes "the product underflowed" from "the answers are truly
    impossible".
    """
    evidence = float(belief.probabilities @ likelihood)
    if evidence > EVIDENCE_UNDERFLOW_GUARD:
        return belief.reweighted(likelihood)
    if log_likelihood_fn is not None:
        try:
            return belief.log_reweighted(log_likelihood_fn())
        except ValueError:
            pass
    raise InconsistentEvidenceError(
        "observed answers have zero probability under the current belief"
    )


# ----------------------------------------------------------------------
# tempered fallback (graceful degradation on zero evidence)
# ----------------------------------------------------------------------

#: Default likelihood floor used by the tempered updates.
TEMPER_FLOOR = 1e-9


def tempered_posterior(
    belief: BeliefState,
    likelihood: np.ndarray,
    floor: float = TEMPER_FLOOR,
    log_likelihood_fn=None,
) -> tuple[BeliefState, bool]:
    """Bayes update that survives zero-evidence answer patterns.

    When ``P(A) > 0`` this is the exact Lemma-3 posterior and the second
    return value is ``False``.  When the evidence is zero, the update
    first retries in log space (when ``log_likelihood_fn`` is supplied)
    to distinguish float64 underflow from genuine inconsistency; an
    underflowed-but-consistent update stays exact and is *not* counted
    as tempered.  Only when the answers truly contradict every
    observation the belief still allows (e.g. an accuracy-1.0 worker
    contradicting a point mass) is the likelihood floored at ``floor``
    times its largest entry (or ``floor`` outright if it is identically
    zero) and renormalized, which re-smooths the posterior marginals
    instead of crashing; the second return value is then ``True`` so
    callers can record the incident.
    """
    if not 0.0 < floor < 1.0:
        raise ValueError(f"floor must lie in (0, 1), got {floor}")
    likelihood = np.asarray(likelihood, dtype=np.float64)
    evidence = float(belief.probabilities @ likelihood)
    if evidence > EVIDENCE_UNDERFLOW_GUARD:
        return belief.reweighted(likelihood), False
    if log_likelihood_fn is not None:
        try:
            return belief.log_reweighted(log_likelihood_fn()), False
        except ValueError:
            pass
    elif evidence > 0.0:
        return belief.reweighted(likelihood), False
    scale = float(likelihood.max())
    floored = likelihood + (scale if scale > 0.0 else 1.0) * floor
    return belief.reweighted(floored), True


def tempered_update_with_answer_set(
    belief: BeliefState, answer_set: AnswerSet, floor: float = TEMPER_FLOOR
) -> tuple[BeliefState, bool]:
    """:func:`update_with_answer_set` with the tempered fallback."""
    likelihood = answer_set_likelihood(belief, answer_set)
    return tempered_posterior(
        belief, likelihood, floor=floor,
        log_likelihood_fn=lambda: log_answer_set_likelihood(belief, answer_set),
    )


def tempered_update_with_family(
    belief: BeliefState, family: AnswerFamily, floor: float = TEMPER_FLOOR
) -> tuple[BeliefState, bool]:
    """:func:`update_with_family` with the tempered fallback."""
    likelihood = family_likelihood(belief, family)
    return tempered_posterior(
        belief, likelihood, floor=floor,
        log_likelihood_fn=lambda: log_family_likelihood(belief, family),
    )
