"""Facts and fact sets (paper section II-A).

A *fact* is a binary proposition of the form "data instance ``e`` should be
labeled ``l``".  Both labeling tasks (asked of preliminary workers) and
checking tasks (asked of expert workers) are Yes-or-No queries about facts,
so the fact is the single unit of work in the whole framework.

A :class:`FactSet` is an ordered, immutable collection of facts.  Order
matters because observations (joint truth assignments, see
:mod:`repro.core.observations`) encode the truth value of the ``i``-th fact
in the ``i``-th bit of the observation index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Fact:
    """A binary proposition "instance ``instance_id`` has label ``label``".

    Parameters
    ----------
    fact_id:
        Globally unique identifier.  All bookkeeping (selection, answers,
        belief updates) is keyed on this id.
    instance_id:
        Identifier of the underlying data instance, e.g. a tweet id.
    label:
        The candidate label whose correctness the fact asserts.
    text:
        Optional human-readable task description (shown to workers).
    """

    fact_id: int
    instance_id: str = ""
    label: str = "positive"
    text: str = field(default="", compare=False)

    def query_text(self) -> str:
        """Render the Yes-or-No query given to crowd workers."""
        subject = self.text or f"instance {self.instance_id or self.fact_id}"
        return f"Should {subject!r} be labeled as {self.label!r}?"


class FactSet:
    """An ordered set of distinct facts.

    Supports iteration, membership tests by :class:`Fact` or by fact id,
    and positional lookup, which the observation encoding relies on.
    """

    def __init__(self, facts: Iterable[Fact]):
        facts = list(facts)
        seen: set[int] = set()
        for fact in facts:
            if fact.fact_id in seen:
                raise ValueError(f"duplicate fact_id {fact.fact_id} in FactSet")
            seen.add(fact.fact_id)
        self._facts: tuple[Fact, ...] = tuple(facts)
        self._index: dict[int, int] = {
            fact.fact_id: position for position, fact in enumerate(self._facts)
        }

    @classmethod
    def from_ids(cls, fact_ids: Iterable[int]) -> "FactSet":
        """Build a bare fact set from integer ids (tests and examples)."""
        return cls(Fact(fact_id=fact_id) for fact_id in fact_ids)

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __getitem__(self, position: int) -> Fact:
        return self._facts[position]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Fact):
            return item.fact_id in self._index
        if isinstance(item, int):
            return item in self._index
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactSet):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    def __repr__(self) -> str:
        ids = [fact.fact_id for fact in self._facts]
        return f"FactSet({ids})"

    @property
    def fact_ids(self) -> tuple[int, ...]:
        """Fact ids in positional order."""
        return tuple(fact.fact_id for fact in self._facts)

    def position_of(self, fact_id: int) -> int:
        """Positional index of ``fact_id`` (the bit position in observations).

        Raises
        ------
        KeyError
            If the fact id is not in this set.
        """
        return self._index[fact_id]

    def by_id(self, fact_id: int) -> Fact:
        """Look up a fact by id."""
        return self._facts[self._index[fact_id]]

    def subset(self, fact_ids: Iterable[int]) -> "FactSet":
        """A new :class:`FactSet` restricted to ``fact_ids`` (kept in the
        order given by the caller, as query sets are ordered)."""
        return FactSet(self.by_id(fact_id) for fact_id in fact_ids)
