"""Checking-budget accounting (paper Algorithm 3, lines 7-8).

The budget ``B`` counts *expert answers*: sending a query set ``T`` to
the expert crowd ``CE`` consumes ``|T| * |CE|`` answers.  The loop stops
when the remaining budget cannot fund another (even single-query) round.

:class:`CostModel` implements the section III-D extension where each
worker's answer has an individual cost (e.g. proportional to accuracy);
the default model charges one unit per answer, recovering the paper's
accounting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .workers import Crowd, Worker


@dataclass(frozen=True)
class CostModel:
    """Per-answer cost of each expert worker.

    Parameters
    ----------
    per_worker:
        Optional mapping ``worker_id -> cost``.  Workers not listed cost
        ``default_cost``.
    default_cost:
        Cost per answer for unlisted workers (1.0 == paper accounting).
    """

    per_worker: dict[str, float] = field(default_factory=dict)
    default_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.default_cost < 0:
            raise ValueError("default_cost must be non-negative")
        for worker_id, cost in self.per_worker.items():
            if cost < 0:
                raise ValueError(
                    f"cost for worker {worker_id!r} must be non-negative"
                )

    @classmethod
    def accuracy_proportional(
        cls, experts: Crowd, rate: float = 1.0
    ) -> "CostModel":
        """Section III-D: cost grows with accuracy, ``cost = rate * Pr_cr``."""
        return cls(
            per_worker={
                worker.worker_id: rate * worker.accuracy for worker in experts
            }
        )

    def answer_cost(self, worker: Worker) -> float:
        """Cost of one answer from ``worker``."""
        return self.per_worker.get(worker.worker_id, self.default_cost)

    def round_cost(self, num_queries: int, experts: Crowd) -> float:
        """Cost of one checking round: every expert answers every query."""
        return num_queries * sum(
            self.answer_cost(worker) for worker in experts
        )

    def family_cost(self, family) -> float:
        """Cost of the answers actually received in a (partial) family.

        Accepts anything iterable over :class:`~repro.core.answers.AnswerSet`
        objects (:class:`~repro.core.answers.AnswerFamily` or
        :class:`~repro.core.answers.PartialAnswerFamily`); only answers
        that exist are charged, so no-shows and skipped facts cost
        nothing.
        """
        return sum(
            self.answer_cost(answer_set.worker) * len(answer_set.answers)
            for answer_set in family
        )


class CheckingBudget:
    """Mutable budget tracker for the checking loop."""

    def __init__(self, total: float, cost_model: CostModel | None = None):
        if total < 0:
            raise ValueError("budget must be non-negative")
        self._total = float(total)
        self._spent = 0.0
        self._cost_model = cost_model or CostModel()

    @property
    def total(self) -> float:
        return self._total

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> float:
        return self._total - self._spent

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def affordable_queries(self, experts: Crowd, k: int) -> int:
        """Largest query count ``<= k`` fundable this round (0 if none).

        With unit costs this is ``min(k, B // |CE|)``, matching the
        paper's ``|T| = min(k, B)`` clamp in Algorithm 2 combined with
        the Algorithm 3 stopping rule ``B < |T| * |CE|``.
        """
        if k <= 0 or len(experts) == 0:
            return 0
        single_query_cost = self._cost_model.round_cost(1, experts)
        if single_query_cost <= 0:
            return k
        affordable = int(self.remaining // single_query_cost)
        return min(k, affordable)

    def charge_round(self, num_queries: int, experts: Crowd) -> float:
        """Deduct one round's cost; returns the amount charged.

        Raises
        ------
        ValueError
            If the round is not affordable with the remaining budget.
        """
        cost = self._cost_model.round_cost(num_queries, experts)
        if cost > self.remaining + 1e-9:
            raise ValueError(
                f"round cost {cost} exceeds remaining budget {self.remaining}"
            )
        self._spent += cost
        return cost

    def charge_family(self, family) -> float:
        """Deduct the cost of the answers actually received.

        The per-answer analogue of :meth:`charge_round` for partial
        answer families: only (worker, fact) pairs that produced an
        answer are charged, so the spent amount can never exceed what a
        full round would have cost, and the budget can never go
        negative.

        Raises
        ------
        ValueError
            If even the received answers exceed the remaining budget
            (possible when reassigned workers cost more than the panel
            the round was sized for).
        """
        cost = self._cost_model.family_cost(family)
        if cost > self.remaining + 1e-9:
            raise ValueError(
                f"answer cost {cost} exceeds remaining budget "
                f"{self.remaining}"
            )
        self._spent = min(self._spent + cost, self._total)
        return cost

    def restore_spent(self, amount: float) -> None:
        """Set the spent amount directly (checkpoint restore only)."""
        if not 0.0 <= amount <= self._total + 1e-9:
            raise ValueError(
                f"spent amount {amount} outside [0, {self._total}]"
            )
        self._spent = float(amount)

    def __repr__(self) -> str:
        return f"CheckingBudget(spent={self._spent}, total={self._total})"
