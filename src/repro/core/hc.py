"""The hierarchical crowdsourcing orchestrator (paper Algorithms 1 & 3).

:class:`HierarchicalCrowdsourcing` drives the initialization-checking-
update loop: given an initialized factored belief, an expert crowd, a
selector, and an *answer source* (anything that produces an
:class:`~repro.core.answers.AnswerFamily` for a query set — in the
experiments a simulator replaying/ sampling worker answers), it
repeatedly selects checking tasks, collects expert answers, applies the
Bayesian update, and charges the budget until the budget cannot fund
another round.

:func:`run_flat_checking` is the NO-HC baseline of section IV-C5:
uniform initial belief, the whole crowd serves as checking workers.
:func:`run_tiered_checking` is the section III-D extension to more than
two tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, Sequence

from .answers import AnswerFamily
from .budget import CheckingBudget, CostModel
from .incidents import FaultEvent
from .observations import BeliefState, FactoredBelief
from .selection import LazyGreedySelector, Selector
from .update import InconsistentEvidenceError, update_with_family
from .workers import Crowd
from . import entropy as entropy_module
from ..obs import OBS


class AnswerSource(Protocol):
    """Produces expert answer families for query sets.

    Implementations include the simulation oracle (samples answers from
    ground truth under each worker's error model) and offline replay of
    recorded crowd answers.
    """

    def collect(
        self, query_fact_ids: Sequence[int], experts: Crowd
    ) -> AnswerFamily: ...


@dataclass(frozen=True)
class RoundRecord:
    """One checking round's bookkeeping.

    ``fault_events`` is empty for healthy rounds; the resilient runtime
    attaches the incidents (no-shows, retries, tempered updates, …) it
    survived while completing the round.
    """

    round_index: int
    query_fact_ids: tuple[int, ...]
    cost: float
    budget_spent: float
    quality: float
    accuracy: float | None
    fault_events: tuple[FaultEvent, ...] = ()


@dataclass
class RunResult:
    """Outcome of a full checking run.

    ``history`` holds one record per round, *plus* an initial record
    (round ``-1``) capturing the post-initialization state, so budget-vs-
    quality curves start at budget 0.
    """

    belief: FactoredBelief
    history: list[RoundRecord] = field(default_factory=list)

    @property
    def final_labels(self) -> dict[int, bool]:
        """Labels finalized from the MAP observation of each group
        (paper Eq. 20)."""
        return self.belief.map_labels()

    @property
    def budgets(self) -> list[float]:
        return [record.budget_spent for record in self.history]

    @property
    def qualities(self) -> list[float]:
        return [record.quality for record in self.history]

    @property
    def accuracies(self) -> list[float | None]:
        return [record.accuracy for record in self.history]


def describe_family(family: AnswerFamily, max_workers: int = 8) -> str:
    """Compact human-readable rendering of an answer family for error
    messages and incident logs: ``{worker: {fact: Y/N}}``."""
    parts = []
    for answer_set in list(family)[:max_workers]:
        answers = ", ".join(
            f"{fact_id}: {'Y' if answer else 'N'}"
            for fact_id, answer in sorted(answer_set.answers.items())
        )
        parts.append(f"{answer_set.worker.worker_id}: {{{answers}}}")
    if len(family) > max_workers:
        parts.append(f"... {len(family) - max_workers} more workers")
    return "{" + "; ".join(parts) + "}"


def total_quality(belief: FactoredBelief) -> float:
    """Data-set quality ``Q = sum_g -H(O_g)`` (Definition 2 summed over
    independent task groups)."""
    return sum(entropy_module.quality(group) for group in belief)


def labeling_accuracy(
    belief: FactoredBelief, ground_truth: Mapping[int, bool]
) -> float:
    """Fraction of facts whose MAP label matches the ground truth."""
    labels = belief.map_labels()
    relevant = [
        fact_id for fact_id in labels if fact_id in ground_truth
    ]
    if not relevant:
        raise ValueError("ground truth covers none of the belief's facts")
    correct = sum(
        1 for fact_id in relevant if labels[fact_id] == ground_truth[fact_id]
    )
    return correct / len(relevant)


class HierarchicalCrowdsourcing:
    """Algorithm 3: the approximate hierarchical crowdsourcing loop.

    Parameters
    ----------
    experts:
        The checking tier ``CE`` (from ``Crowd.split(theta)``).
    selector:
        Checking-task selection strategy; defaults to the paper's greedy
        Algorithm 2.
    k:
        Queries selected per round (``|T| = min(k, affordable)``).
    cost_model:
        Optional per-answer costs (section III-D extension); the default
        charges 1 per answer as in the paper.
    panel_size:
        Experts answering each round.  The paper sends every query to
        all of CE (the default, ``None``); a smaller panel stretches the
        budget over more queries at lower per-query confidence.  The
        ``panel_size`` most-accurate experts are used, and selection
        evaluates the conditional entropy against that panel.
    """

    def __init__(
        self,
        experts: Crowd,
        selector: Selector | None = None,
        k: int = 1,
        cost_model: CostModel | None = None,
        panel_size: int | None = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        if len(experts) == 0:
            raise ValueError("the expert crowd CE must not be empty")
        if panel_size is not None:
            if not 1 <= panel_size <= len(experts):
                raise ValueError(
                    f"panel_size must lie in [1, {len(experts)}]"
                )
            ranked = sorted(
                experts, key=lambda worker: -worker.accuracy
            )
            experts = Crowd(ranked[:panel_size])
        self.experts = experts
        self.selector = selector or LazyGreedySelector()
        self.k = k
        self.cost_model = cost_model

    def run(
        self,
        belief: FactoredBelief,
        answer_source: AnswerSource,
        budget: float,
        ground_truth: Mapping[int, bool] | None = None,
        on_round: Callable[[RoundRecord], None] | None = None,
        max_rounds: int | None = None,
    ) -> RunResult:
        """Run the checking loop until the budget is exhausted.

        Parameters
        ----------
        belief:
            The initialized factored belief (modified via copy; the
            caller's object is left untouched).
        answer_source:
            Supplier of expert answer families.
        budget:
            Total expert-answer budget ``B``.
        ground_truth:
            Optional ``fact_id -> truth`` map; enables accuracy tracking.
        on_round:
            Optional callback invoked after every round.
        max_rounds:
            Optional hard cap on rounds (guards pathological configs).
        """
        belief = belief.copy()
        tracker = CheckingBudget(budget, cost_model=self.cost_model)
        result = RunResult(belief=belief)
        result.history.append(
            self._record(-1, (), 0.0, tracker, belief, ground_truth)
        )
        round_index = 0
        while max_rounds is None or round_index < max_rounds:
            affordable = tracker.affordable_queries(self.experts, self.k)
            if affordable == 0:
                break
            with OBS.phase("select"):
                query_fact_ids = self.selector.select(
                    belief, self.experts, affordable
                )
            if not query_fact_ids:
                break  # no positive-gain checking task remains
            with OBS.phase("collect"):
                family = answer_source.collect(query_fact_ids, self.experts)
            with OBS.phase("update"):
                self._apply_family(belief, family)
            cost = tracker.charge_round(len(query_fact_ids), self.experts)
            record = self._record(
                round_index,
                tuple(query_fact_ids),
                cost,
                tracker,
                belief,
                ground_truth,
            )
            result.history.append(record)
            if on_round is not None:
                on_round(record)
            round_index += 1
        return result

    def _apply_family(
        self, belief: FactoredBelief, family: AnswerFamily
    ) -> None:
        """Split a (possibly multi-group) answer family by group and apply
        the Bayesian update to each touched group."""
        query_fact_ids = family.query_fact_ids
        groups: dict[int, list[int]] = {}
        for fact_id in query_fact_ids:
            groups.setdefault(belief.group_index_of(fact_id), []).append(fact_id)
        for group_index, fact_ids in groups.items():
            sub_family = AnswerFamily(
                answer_sets=tuple(
                    type(answer_set)(
                        worker=answer_set.worker,
                        answers={
                            fact_id: answer_set.answer_for(fact_id)
                            for fact_id in fact_ids
                        },
                    )
                    for answer_set in family
                )
            )
            try:
                updated = update_with_family(belief[group_index], sub_family)
            except InconsistentEvidenceError as error:
                raise InconsistentEvidenceError(
                    f"{error} (query set {sorted(query_fact_ids)}, "
                    f"group facts {sorted(fact_ids)}, answer family "
                    f"{describe_family(sub_family)})"
                ) from error
            belief.replace_group(group_index, updated)
        # Stateful selectors cache entropies keyed on belief identity;
        # releasing the updated groups' entries right away keeps the
        # cross-round cache bounded by the current belief.
        invalidate = getattr(self.selector, "invalidate_groups", None)
        if callable(invalidate):
            invalidate(groups.keys())

    @staticmethod
    def _record(
        round_index: int,
        query_fact_ids: tuple[int, ...],
        cost: float,
        tracker: CheckingBudget,
        belief: FactoredBelief,
        ground_truth: Mapping[int, bool] | None,
    ) -> RoundRecord:
        return RoundRecord(
            round_index=round_index,
            query_fact_ids=query_fact_ids,
            cost=cost,
            budget_spent=tracker.spent,
            quality=total_quality(belief),
            accuracy=(
                labeling_accuracy(belief, ground_truth)
                if ground_truth is not None
                else None
            ),
        )


def run_flat_checking(
    facts_groups: Sequence[Sequence],
    crowd: Crowd,
    answer_source: AnswerSource,
    budget: float,
    k: int = 1,
    selector: Selector | None = None,
    ground_truth: Mapping[int, bool] | None = None,
) -> RunResult:
    """The NO-HC baseline (section IV-C5).

    Every worker serves as a checking worker and the belief starts
    uniform (no preliminary tier, no aggregation-based initialization).

    ``facts_groups`` is a sequence of :class:`~repro.core.facts.FactSet`
    objects, one per independent task group.
    """
    from .facts import FactSet

    groups = []
    for group in facts_groups:
        fact_set = group if isinstance(group, FactSet) else FactSet(group)
        groups.append(BeliefState.uniform(fact_set))
    belief = FactoredBelief(groups)
    runner = HierarchicalCrowdsourcing(
        experts=crowd, selector=selector, k=k
    )
    return runner.run(
        belief, answer_source, budget, ground_truth=ground_truth
    )


def run_tiered_checking(
    belief: FactoredBelief,
    tiers: Sequence[Crowd],
    answer_source: AnswerSource,
    budget_per_tier: Sequence[float],
    k: int = 1,
    selector: Selector | None = None,
    ground_truth: Mapping[int, bool] | None = None,
) -> list[RunResult]:
    """Section III-D extension: several expert tiers check sequentially.

    Each tier runs a full checking loop on the belief left by the
    previous tier, with its own budget.  Returns one :class:`RunResult`
    per tier (each result's belief feeds the next tier).
    """
    if len(tiers) != len(budget_per_tier):
        raise ValueError("need one budget per tier")
    results: list[RunResult] = []
    current = belief
    for tier, tier_budget in zip(tiers, budget_per_tier):
        runner = HierarchicalCrowdsourcing(
            experts=tier, selector=selector, k=k
        )
        result = runner.run(
            current, answer_source, tier_budget, ground_truth=ground_truth
        )
        results.append(result)
        current = result.belief
    return results
