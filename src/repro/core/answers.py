"""Crowdsourced answers and their probabilities (paper section II-B).

This module implements Lemmas 1 and 2:

* the likelihood ``P(A_cr^T | o)`` of a single worker's answer set given an
  observation, via the consistent/inconsistent sets ``T+`` and ``T-``;
* the marginal probability ``P(A_cr^T)`` of an answer set;
* the likelihood and probability of a whole *answer family* (one answer
  set per worker, workers independent given the observation);
* exact enumeration of the answer-family space ``AS_C^T`` needed by the
  conditional-entropy objective.

The enumeration exploits two structural facts.  First, ``P(a | o)``
depends on ``o`` only through the truth values of the queried facts, so
observations collapse into ``2**|T|`` *patterns*.  Second, given a
pattern, a worker's answer-set likelihood depends only on the Hamming
distance between answers and pattern, giving a ``2**|T| x 2**|T|``
response matrix per worker; the family distribution is the pattern
marginal contracted against the per-worker response matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Mapping, Sequence

import numpy as np

from .observations import BeliefState, truth_table
from .workers import Crowd, Worker

#: Default cap on the answer-family space: ``|T| * |CE|`` answer bits.
#: ``2**22`` float64 entries is ~32 MiB, a sane laptop ceiling.
MAX_FAMILY_BITS = 22


class FamilySpaceTooLarge(ValueError):
    """Raised when enumerating ``AS_C^T`` would exceed the memory guard."""


@dataclass(frozen=True)
class AnswerSet:
    """A single worker's answers to a query set (paper Definition 3).

    ``answers`` maps fact id -> boolean answer ("Yes" == ``True``).  An
    answer set is *not* a complete assignment over the fact set: facts
    outside the query set carry no information.
    """

    worker: Worker
    answers: Mapping[int, bool]

    def __post_init__(self) -> None:
        object.__setattr__(self, "answers", dict(self.answers))

    @property
    def query_fact_ids(self) -> tuple[int, ...]:
        return tuple(self.answers.keys())

    def answer_for(self, fact_id: int) -> bool:
        """The worker's answer ``A_cr^T(f)`` for a queried fact."""
        return self.answers[fact_id]

    def bits(self, query_fact_ids: Sequence[int]) -> np.ndarray:
        """Answers as a boolean vector in the given query order."""
        return np.array(
            [self.answers[fact_id] for fact_id in query_fact_ids], dtype=bool
        )


@dataclass(frozen=True)
class AnswerFamily:
    """Answer sets from every worker in a crowd for one query set."""

    answer_sets: tuple[AnswerSet, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "answer_sets", tuple(self.answer_sets))
        queries = {
            frozenset(answer_set.query_fact_ids)
            for answer_set in self.answer_sets
        }
        if len(queries) > 1:
            raise ValueError("all answer sets must cover the same query set")

    def __iter__(self):
        return iter(self.answer_sets)

    def __len__(self) -> int:
        return len(self.answer_sets)

    @property
    def query_fact_ids(self) -> tuple[int, ...]:
        if not self.answer_sets:
            return ()
        return self.answer_sets[0].query_fact_ids

    def votes_for(self, fact_id: int) -> list[bool]:
        """All workers' answers ``A_C^T(f)`` for one queried fact."""
        return [answer_set.answer_for(fact_id) for answer_set in self.answer_sets]


@dataclass(frozen=True)
class PartialAnswerFamily:
    """What actually came back from an unreliable crowd for one round.

    Unlike :class:`AnswerFamily` — which requires every worker to answer
    every queried fact — a partial family records only the answers that
    were received: workers may be missing entirely (no-shows) and the
    answer sets may cover different subsets of the query set (partial
    responses).  Lemma 3 still applies exactly: workers are
    conditionally independent given the observation, so conditioning on
    the responders' answers alone is the correct Bayesian update — the
    missing answers simply carry no evidence.

    Parameters
    ----------
    intended_query_fact_ids:
        The query set that was sent out.
    intended_worker_ids:
        The workers the queries were sent to.
    answer_sets:
        One :class:`AnswerSet` per *responding* worker; each may cover
        any non-empty subset of the query set.
    """

    intended_query_fact_ids: tuple[int, ...]
    intended_worker_ids: tuple[str, ...]
    answer_sets: tuple[AnswerSet, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "intended_query_fact_ids",
            tuple(self.intended_query_fact_ids),
        )
        object.__setattr__(
            self, "intended_worker_ids", tuple(self.intended_worker_ids)
        )
        object.__setattr__(self, "answer_sets", tuple(self.answer_sets))
        intended_facts = set(self.intended_query_fact_ids)
        intended_workers = set(self.intended_worker_ids)
        seen: set[str] = set()
        for answer_set in self.answer_sets:
            worker_id = answer_set.worker.worker_id
            if worker_id in seen:
                raise ValueError(f"duplicate answer set for {worker_id!r}")
            seen.add(worker_id)
            if worker_id not in intended_workers:
                raise ValueError(
                    f"answer set from unexpected worker {worker_id!r}"
                )
            extra = set(answer_set.query_fact_ids) - intended_facts
            if extra:
                raise ValueError(
                    f"worker {worker_id!r} answered unqueried facts "
                    f"{sorted(extra)}"
                )
            if not answer_set.answers:
                raise ValueError(
                    f"empty answer set for {worker_id!r}; omit the worker "
                    "instead"
                )

    def __iter__(self):
        return iter(self.answer_sets)

    def __len__(self) -> int:
        return len(self.answer_sets)

    @property
    def answered_worker_ids(self) -> tuple[str, ...]:
        return tuple(
            answer_set.worker.worker_id for answer_set in self.answer_sets
        )

    @property
    def missing_worker_ids(self) -> tuple[str, ...]:
        """Intended workers that returned nothing, in intended order."""
        answered = set(self.answered_worker_ids)
        return tuple(
            worker_id
            for worker_id in self.intended_worker_ids
            if worker_id not in answered
        )

    @property
    def answered_fact_ids(self) -> tuple[int, ...]:
        """Queried facts with at least one answer, in query order."""
        covered = {
            fact_id
            for answer_set in self.answer_sets
            for fact_id in answer_set.query_fact_ids
        }
        return tuple(
            fact_id
            for fact_id in self.intended_query_fact_ids
            if fact_id in covered
        )

    @property
    def num_answers(self) -> int:
        """Total individual answers received."""
        return sum(len(answer_set.answers) for answer_set in self.answer_sets)

    @property
    def is_empty(self) -> bool:
        return not self.answer_sets

    @property
    def is_complete(self) -> bool:
        """Whether every intended worker answered every queried fact."""
        if set(self.answered_worker_ids) != set(self.intended_worker_ids):
            return False
        intended = set(self.intended_query_fact_ids)
        return all(
            set(answer_set.query_fact_ids) == intended
            for answer_set in self.answer_sets
        )

    def to_family(self) -> AnswerFamily:
        """The equivalent strict :class:`AnswerFamily`.

        Raises ``ValueError`` unless the family is complete.
        """
        if not self.is_complete:
            raise ValueError(
                "partial answer family is incomplete "
                f"(missing workers {list(self.missing_worker_ids)}, "
                f"{self.num_answers} of "
                f"{len(self.intended_worker_ids) * len(self.intended_query_fact_ids)}"
                " answers)"
            )
        return AnswerFamily(answer_sets=self.answer_sets)

    @classmethod
    def from_family(cls, family: AnswerFamily) -> "PartialAnswerFamily":
        """Wrap a complete family in the partial interface."""
        return cls(
            intended_query_fact_ids=family.query_fact_ids,
            intended_worker_ids=tuple(
                answer_set.worker.worker_id for answer_set in family
            ),
            answer_sets=family.answer_sets,
        )


# ----------------------------------------------------------------------
# consistent / inconsistent sets (paper Eq. 7) and single-set likelihoods
# ----------------------------------------------------------------------


def consistent_sets(
    belief: BeliefState,
    observation_index: int,
    answer_set: AnswerSet,
) -> tuple[set[int], set[int]]:
    """The consistent set ``T+`` and inconsistent set ``T-`` (paper Eq. 7)
    of an observation and an answer set, as sets of fact ids."""
    table = truth_table(belief.num_facts)
    consistent: set[int] = set()
    inconsistent: set[int] = set()
    for fact_id, answer in answer_set.answers.items():
        position = belief.facts.position_of(fact_id)
        if bool(table[observation_index, position]) == answer:
            consistent.add(fact_id)
        else:
            inconsistent.add(fact_id)
    return consistent, inconsistent


def answer_set_likelihood(
    belief: BeliefState,
    answer_set: AnswerSet,
) -> np.ndarray:
    """Vector of ``P(A_cr^T | o)`` over all observations (paper Eq. 6).

    Entry ``s`` is ``Pr_cr ** |T+| * (1 - Pr_cr) ** |T-|`` for
    observation ``s``.
    """
    accuracy = answer_set.worker.accuracy
    query_fact_ids = answer_set.query_fact_ids
    if not query_fact_ids:
        return np.ones(belief.num_observations)
    positions = [belief.facts.position_of(fact_id) for fact_id in query_fact_ids]
    observation_bits = truth_table(belief.num_facts)[:, positions]
    answer_bits = answer_set.bits(query_fact_ids)
    matches = observation_bits == answer_bits
    return np.where(matches, accuracy, 1.0 - accuracy).prod(axis=1)


def log_answer_set_likelihood(
    belief: BeliefState,
    answer_set: AnswerSet,
) -> np.ndarray:
    """Log-space counterpart of :func:`answer_set_likelihood`.

    Entry ``s`` is ``|T+| log Pr_cr + |T-| log (1 - Pr_cr)``; exact-zero
    likelihoods (deterministic workers contradicted) come out as
    ``-inf``.  Used by the underflow-proof update path: a large panel or
    near-0/1 accuracies can drive the linear product below the float64
    floor, but sums of logs cannot underflow.
    """
    accuracy = answer_set.worker.accuracy
    query_fact_ids = answer_set.query_fact_ids
    if not query_fact_ids:
        return np.zeros(belief.num_observations)
    positions = [belief.facts.position_of(fact_id) for fact_id in query_fact_ids]
    observation_bits = truth_table(belief.num_facts)[:, positions]
    answer_bits = answer_set.bits(query_fact_ids)
    matches = observation_bits == answer_bits
    with np.errstate(divide="ignore"):
        log_hit = np.log(accuracy)
        log_miss = np.log(1.0 - accuracy)
    return np.where(matches, log_hit, log_miss).sum(axis=1)


def log_family_likelihood(
    belief: BeliefState, family: AnswerFamily | PartialAnswerFamily
) -> np.ndarray:
    """Log-space counterpart of :func:`family_likelihood` (Lemma 2).

    Conditional independence turns the per-worker product into a sum of
    per-worker log-likelihoods, immune to underflow no matter the panel
    size.
    """
    total = np.zeros(belief.num_observations)
    for answer_set in family:
        total += log_answer_set_likelihood(belief, answer_set)
    return total


def answer_set_probability(belief: BeliefState, answer_set: AnswerSet) -> float:
    """Marginal ``P(A_cr^T) = sum_o P(o) P(A_cr^T | o)`` (paper Eq. 8)."""
    return float(belief.probabilities @ answer_set_likelihood(belief, answer_set))


def family_likelihood(
    belief: BeliefState, family: AnswerFamily
) -> np.ndarray:
    """Vector of ``P(A_C^T | o)`` over observations.

    Workers answer independently given the observation, so the family
    likelihood is the product of the per-worker likelihoods (Lemma 2).
    """
    likelihood = np.ones(belief.num_observations)
    for answer_set in family:
        likelihood *= answer_set_likelihood(belief, answer_set)
    return likelihood


def family_probability(belief: BeliefState, family: AnswerFamily) -> float:
    """Marginal ``P(A_C^T)`` (paper Eq. 11)."""
    return float(belief.probabilities @ family_likelihood(belief, family))


# ----------------------------------------------------------------------
# answer-family space enumeration
# ----------------------------------------------------------------------


@lru_cache(maxsize=32)
def _hamming_matrix(num_queries: int) -> np.ndarray:
    """``(2**q, 2**q)`` matrix of Hamming distances between bit patterns."""
    size = 1 << num_queries
    xor = np.arange(size)[:, None] ^ np.arange(size)[None, :]
    distances = np.zeros((size, size), dtype=np.int64)
    value = xor.copy()
    while value.any():
        distances += value & 1
        value >>= 1
    distances.setflags(write=False)
    return distances


def worker_response_matrix(num_queries: int, accuracy: float) -> np.ndarray:
    """``W[v, a] = P(answer pattern a | true pattern v)`` for one worker.

    ``W[v, a] = p**(q - d) * (1-p)**d`` with ``d`` the Hamming distance
    between ``a`` and ``v``; every row sums to 1.
    """
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError(f"accuracy must lie in [0, 1], got {accuracy}")
    distances = _hamming_matrix(num_queries)
    # 0**0 == 1 handles the deterministic endpoints p in {0, 1}.
    with np.errstate(divide="ignore"):
        matrix = accuracy ** (num_queries - distances) * (1.0 - accuracy) ** distances
    return matrix


def pattern_marginal(
    belief: BeliefState, query_fact_ids: Sequence[int]
) -> np.ndarray:
    """Marginal ``q(v)`` of the queried facts' joint truth pattern.

    Collapses the observation distribution onto the ``2**|T|`` possible
    truth patterns of the query set; this is the only aspect of the
    belief the answer distribution depends on.  Sparse beliefs collapse
    their support only, via packed-state bit gathers instead of truth
    table columns.
    """
    positions = [belief.facts.position_of(fact_id) for fact_id in query_fact_ids]
    if not positions:
        return np.ones(1)
    from .kernel import SparseBeliefState, pattern_indices

    if isinstance(belief, SparseBeliefState):
        return np.bincount(
            pattern_indices(belief.support, positions),
            weights=belief.sparse_probabilities,
            minlength=1 << len(positions),
        )
    table = truth_table(belief.num_facts)[:, positions]
    weights = 1 << np.arange(len(positions), dtype=np.int64)
    pattern_index = table @ weights
    return np.bincount(
        pattern_index, weights=belief.probabilities, minlength=1 << len(positions)
    )


def crowd_single_query_responses(
    experts: Crowd, max_family_bits: int = MAX_FAMILY_BITS
) -> np.ndarray:
    """``R[v, a] = P(joint answer index a | true value v)`` for ``|T| = 1``.

    The single-query answer family of a crowd is one bit per worker;
    ``R`` is the iterated Kronecker product of the per-worker ``2 x 2``
    response matrices, shape ``(2, 2**|CE|)`` with worker 0 on the
    lowest bit of the family index.  Crucially ``R`` does not depend on
    the belief at all, so one tensor serves every fact of every group —
    this is what makes the batched first-step gain kernel
    (:func:`repro.core.entropy.first_step_gains`) a single matmul per
    group.

    Raises
    ------
    FamilySpaceTooLarge
        If ``|CE| > max_family_bits`` (one query bit per worker).
    """
    num_workers = len(experts)
    if num_workers > max_family_bits:
        raise FamilySpaceTooLarge(
            f"single-query family space needs {num_workers} bits "
            f"(> limit {max_family_bits})"
        )
    return _cached_single_query_responses(
        tuple(worker.accuracy for worker in experts)
    )


@lru_cache(maxsize=64)
def _cached_single_query_responses(accuracies: tuple[float, ...]) -> np.ndarray:
    """Memoized body of :func:`crowd_single_query_responses`.

    Keyed on the accuracy tuple alone (worker identities are irrelevant
    to the response tensor), so re-selecting with an unchanged panel —
    the common case inside one checking round batch — reuses the tensor
    instead of re-running the Kronecker build per group.
    """
    tensor = np.ones((2, 1))
    for accuracy in accuracies:
        response = worker_response_matrix(1, accuracy)
        tensor = (tensor[:, :, None] * response[:, None, :]).reshape(2, -1)
    tensor.setflags(write=False)
    return tensor


def single_fact_family_distributions(
    belief: BeliefState,
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> np.ndarray:
    """Family distributions of every singleton query set, batched.

    Row ``i`` is :func:`family_distribution` of querying only the fact
    at position ``i`` — all ``n`` rows computed with one ``(n, 2) @
    (2, 2**|CE|)`` matmul against the shared pattern marginal, instead
    of ``n`` separate enumerations.  A single query's pattern marginal
    is just the fact's truth marginal ``[1 - P(f), P(f)]``.
    """
    responses = crowd_single_query_responses(
        experts, max_family_bits=max_family_bits
    )
    marginals = belief.marginals()
    pattern = np.stack([1.0 - marginals, marginals], axis=1)
    return pattern @ responses


def family_distribution(
    belief: BeliefState,
    query_fact_ids: Sequence[int],
    experts: Crowd,
    max_family_bits: int = MAX_FAMILY_BITS,
) -> np.ndarray:
    """The full distribution over the answer-family space ``AS_CE^T``.

    Returns a flat array of ``2**(|T| * |CE|)`` probabilities.  Family
    index layout: worker 0's answer pattern occupies the lowest ``|T|``
    bits via the *first* (fastest-varying) axis, i.e. the returned array
    is the flattened ``(A_0, A_1, ..)`` tensor in C order with worker 0
    as the last axis after contraction; callers should treat the layout
    as opaque and only rely on the multiset of probabilities.

    Raises
    ------
    FamilySpaceTooLarge
        If ``|T| * |CE| > max_family_bits``.
    """
    num_queries = len(query_fact_ids)
    if len(experts) == 0 or num_queries == 0:
        return np.ones(1)  # single empty family, probability 1
    total_bits = num_queries * len(experts)
    if total_bits > max_family_bits:
        raise FamilySpaceTooLarge(
            f"answer family space needs {total_bits} bits "
            f"(> limit {max_family_bits})"
        )
    marginal = pattern_marginal(belief, query_fact_ids)
    responses = [
        worker_response_matrix(num_queries, worker.accuracy)
        for worker in experts
    ]
    # P(a_1..a_J) = sum_v q(v) prod_j W_j[v, a_j]: one einsum with a
    # pattern axis 'A' plus one output axis per worker.  einsum's
    # optimizer turns the two-worker case into a plain matmul, avoiding
    # the (patterns x families) intermediate a naive loop would build.
    letters = "abcdefghijklmnopqrstuvwxyz"
    if len(experts) > len(letters):
        raise FamilySpaceTooLarge(
            f"more than {len(letters)} expert workers are not supported "
            "by exact family enumeration"
        )
    axes = letters[: len(experts)]
    subscripts = (
        "A," + ",".join(f"A{axis}" for axis in axes) + "->" + axes
    )
    tensor = np.einsum(subscripts, marginal, *responses, optimize=True)
    return tensor.reshape(-1)


def enumerate_answer_families(
    query_fact_ids: Sequence[int], experts: Crowd
) -> Iterable[AnswerFamily]:
    """Yield every concrete :class:`AnswerFamily` in ``AS_CE^T``.

    Exponential in ``|T| * |CE|``; intended for tests and the naive
    cross-check implementations, not the optimized selectors.
    """
    num_queries = len(query_fact_ids)
    num_patterns = 1 << num_queries
    workers = list(experts)

    def pattern_to_answers(pattern: int) -> dict[int, bool]:
        return {
            fact_id: bool((pattern >> position) & 1)
            for position, fact_id in enumerate(query_fact_ids)
        }

    total = num_patterns ** len(workers)
    for family_index in range(total):
        remaining = family_index
        answer_sets = []
        for worker in workers:
            pattern = remaining % num_patterns
            remaining //= num_patterns
            answer_sets.append(
                AnswerSet(worker=worker, answers=pattern_to_answers(pattern))
            )
        yield AnswerFamily(answer_sets=tuple(answer_sets))
