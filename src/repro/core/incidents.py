"""Structured incident records for degraded checking rounds.

A production checking campaign runs against humans who no-show, time
out, spam, or contradict the belief so hard the Bayesian update has no
support.  The resilient runtime (:mod:`repro.simulation.resilient`)
keeps the loop alive through all of that; :class:`FaultEvent` is the
audit trail it leaves behind — one record per incident, attached to the
round it happened in (``RoundRecord.fault_events``) and to the session's
journal, so a degraded run can be inspected after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


#: Known incident kinds.  The set is advisory (events from newer
#: versions deserialize fine); it documents what the built-in fault
#: injection and resilient session emit.
FAULT_KINDS = frozenset(
    {
        "no_show",         # a worker returned no answers this round
        "timeout",         # the whole collection attempt timed out
        "spam",            # a worker answered uniformly at random
        "adversarial",     # a worker's answers were flipped
        "partial",         # a worker skipped some queried facts
        "empty_round",     # an attempt produced zero answers overall
        "backoff",         # the session slept before retrying
        "reassignment",    # failed workers were swapped for reserves
        "tempered_update", # zero-evidence answers required tempering
        "budget_clip",     # answers dropped to stay within budget
        "abandoned",       # a query set was given up on permanently
        "gold_probe",      # a seeded known-truth fact was scored
        "drift",           # a worker's CUSUM drift statistic alarmed
        "quarantine",      # a worker's breaker opened; worker benched
        "probation",       # a half-open worker answered probation probes
        "readmit",         # a quarantined worker passed probation
        "shard_deadline",  # a shard missed its command deadline (hung)
        "shard_death",     # a shard worker process died mid-command
        "shard_protocol",  # a shard reply arrived garbled/desynchronized
        "shard_restart",   # a failed shard was respawned in place
        "shard_failover",  # a shard's groups degraded to inline execution
        "shard_rebalance", # degraded groups merged into a surviving shard
        "worker_join",     # a streamed expert joined the checking panel
        "worker_leave",    # a streamed expert left the checking panel
        "group_sealed",    # a streamed group's belief was initialized
        "late_admit",      # a late event was admitted with tempering
        "late_drop",       # an event arrived past the straggler timeout
        "degenerate_marginals",  # zero-mass marginal product; uniform fallback
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One incident observed while collecting or applying answers.

    Parameters
    ----------
    kind:
        Incident category; see :data:`FAULT_KINDS` for the built-ins.
    round_index:
        Checking round the incident belongs to (``-1`` when the emitter
        does not know it yet; the session re-stamps on receipt).
    attempt:
        Zero-based collection attempt within the round.
    worker_id:
        The worker involved, when the incident is worker-specific.
    fact_ids:
        The queried facts affected (e.g. the answers a worker dropped).
    detail:
        Free-form human-readable context.
    """

    kind: str
    round_index: int = -1
    attempt: int = 0
    worker_id: str | None = None
    fact_ids: tuple[int, ...] = ()
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("FaultEvent.kind must be a non-empty string")
        object.__setattr__(self, "fact_ids", tuple(self.fact_ids))

    def stamped(self, round_index: int, attempt: int | None = None) -> "FaultEvent":
        """Copy of the event tagged with its round (and attempt)."""
        return replace(
            self,
            round_index=round_index,
            attempt=self.attempt if attempt is None else attempt,
        )
