"""Bit-packed, log-space, sparse belief kernel.

The dense :class:`~repro.core.observations.BeliefState` materializes all
``2**n`` observation probabilities and walks ``(2**n, n)`` boolean truth
tables on every likelihood evaluation.  This module is the scale path:

* **Bit-packed observation states.**  An observation index *is* its
  truth assignment (bit ``i`` of ``s`` is fact ``i``'s value,
  little-endian — the same encoding ``truth_table`` materializes), so
  match counting against an answer set reduces to a popcount of
  ``(s & query_mask) ^ answer_mask`` over a vector of packed states —
  no ``(2**n, n)`` bool matrix, no fancy-indexed column gathers.
* **Log-space updates.**  Posteriors are computed as
  ``exp(log prior + log likelihood - logsumexp)``; the normalization
  never leaves log space, so no evidence product can underflow and no
  linear renormalization pass perturbs the result afterwards.
* **Sparse truncated beliefs.**  :class:`SparseBeliefState` stores only
  the observations carrying mass.  With truncation budget ``epsilon``
  it drops the smallest states whose *total* mass stays ``<= epsilon``,
  which bounds the total-variation distance to the untruncated belief
  by exactly the dropped mass (see DESIGN.md for the one-line proof).

``epsilon = 0`` is never routed here: the dense class remains the exact
reference path and its bytes (journals, checkpoints, selections) are
pinned by the equivalence suites.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Sequence

import numpy as np

from .facts import FactSet
from .observations import MAX_FACTS_PER_SPACE, BeliefState, _EPSILON

__all__ = [
    "SparseBeliefState",
    "default_belief_epsilon",
    "packed_states",
    "popcount",
    "pack_query",
    "pattern_indices",
    "sparse_from_marginals",
    "sparse_log_answer_set_likelihood",
    "sparse_log_family_likelihood",
    "state_wire_payload",
    "state_from_wire",
]

def default_belief_epsilon() -> float:
    """Process-wide default for the sparse-kernel truncation budget.

    Reads ``REPRO_BELIEF_EPSILON`` so CI legs (and operators) can run
    existing entry points on the truncated kernel without threading the
    flag through every call site; unset or empty means exact dense.
    """
    raw = os.environ.get("REPRO_BELIEF_EPSILON", "").strip()
    if not raw:
        return 0.0
    value = float(raw)
    if not 0.0 <= value < 1.0:
        raise ValueError(
            f"REPRO_BELIEF_EPSILON must lie in [0, 1), got {raw!r}"
        )
    return value


if hasattr(np, "bitwise_count"):
    def popcount(values: np.ndarray) -> np.ndarray:
        """Per-element population count of packed observation states."""
        return np.bitwise_count(values).astype(np.int64)
else:  # pragma: no cover - numpy < 2.0 fallback
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(1 << 16)], dtype=np.int64
    )

    def popcount(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        total = np.zeros(values.shape, dtype=np.int64)
        while np.any(values):
            total += _POPCOUNT_LUT[values & 0xFFFF]
            values = values >> 16
        return total


def packed_states(num_facts: int) -> np.ndarray:
    """All ``2**n`` observations as packed masks (``uint64``).

    The identity map — observation index *is* the packed assignment —
    made explicit for callers that want the full space.
    """
    if not 0 <= num_facts <= MAX_FACTS_PER_SPACE:
        raise ValueError(
            f"num_facts must lie in [0, {MAX_FACTS_PER_SPACE}], "
            f"got {num_facts}"
        )
    return np.arange(1 << num_facts, dtype=np.uint64)


def pack_query(
    facts: FactSet, answers: dict[int, bool] | Sequence[tuple[int, bool]]
) -> tuple[int, int, int]:
    """Pack a ``{fact_id: answer}`` query into bit masks.

    Returns ``(query_mask, answer_mask, num_queries)``: bit ``p`` of
    ``query_mask`` is set iff the fact at position ``p`` was queried,
    and the corresponding bit of ``answer_mask`` carries the answer.
    """
    items = answers.items() if isinstance(answers, dict) else answers
    query_mask = 0
    answer_mask = 0
    count = 0
    for fact_id, answer in items:
        position = facts.position_of(fact_id)
        query_mask |= 1 << position
        if answer:
            answer_mask |= 1 << position
        count += 1
    return query_mask, answer_mask, count


def pattern_indices(
    states: np.ndarray, positions: Sequence[int]
) -> np.ndarray:
    """Compact pattern index of the selected bit positions per state.

    Output bit ``j`` is input bit ``positions[j]`` — the packed
    equivalent of ``truth_table(n)[:, positions] @ (1 << arange(q))``.
    """
    states = np.asarray(states, dtype=np.int64)
    out = np.zeros(states.shape, dtype=np.int64)
    for j, position in enumerate(positions):
        out |= ((states >> np.int64(position)) & np.int64(1)) << np.int64(j)
    return out


def _match_log_terms(accuracy: float) -> tuple[float, float]:
    with np.errstate(divide="ignore"):
        log_hit = float(np.log(accuracy))
        log_miss = float(np.log(1.0 - accuracy))
    return log_hit, log_miss


def _scaled(count: np.ndarray, log_term: float) -> np.ndarray:
    """``count * log_term`` with the ``0 * -inf == 0`` convention."""
    if np.isfinite(log_term):
        return count * log_term
    out = np.zeros(count.shape, dtype=np.float64)
    out[count > 0] = log_term
    return out


def sparse_log_answer_set_likelihood(
    facts: FactSet, states: np.ndarray, answer_set
) -> np.ndarray:
    """``log P(A_cr^T | o)`` at the given packed states only.

    The bit-packed counterpart of
    :func:`repro.core.answers.log_answer_set_likelihood`: with ``d`` the
    popcount of ``(s & query_mask) ^ answer_mask``, the log-likelihood
    is ``(|T| - d) log p + d log (1 - p)``.
    """
    query_mask, answer_mask, num_queries = pack_query(
        facts, answer_set.answers
    )
    if num_queries == 0:
        return np.zeros(np.asarray(states).shape, dtype=np.float64)
    states = np.asarray(states, dtype=np.int64)
    mismatches = popcount(
        (states & np.int64(query_mask)) ^ np.int64(answer_mask)
    )
    log_hit, log_miss = _match_log_terms(answer_set.worker.accuracy)
    return _scaled(num_queries - mismatches, log_hit) + _scaled(
        mismatches, log_miss
    )


def sparse_log_family_likelihood(
    facts: FactSet, states: np.ndarray, family
) -> np.ndarray:
    """``log P(A_C^T | o)`` at the given packed states (Lemma 2 sum)."""
    total = np.zeros(np.asarray(states).shape, dtype=np.float64)
    for answer_set in family:
        total += sparse_log_answer_set_likelihood(
            facts, states, answer_set
        )
    return total


def _truncated(
    support: np.ndarray, values: np.ndarray, epsilon: float
) -> tuple[np.ndarray, np.ndarray]:
    """Drop the smallest-mass states within a total budget of ``epsilon``.

    ``values`` must be positive.  States are ranked by (probability,
    state index) ascending and the longest prefix whose cumulative mass
    stays ``<= epsilon * total`` is removed (at least one state always
    survives); the rest is renormalized.  The total-variation distance
    between the original and the truncated-renormalized distribution is
    exactly the dropped mass, hence ``<= epsilon``.
    """
    if epsilon <= 0.0 or support.size <= 1:
        return support, values
    order = np.lexsort((support, values))
    cumulative = np.cumsum(values[order])
    budget = epsilon * float(cumulative[-1])
    dropped = int(np.searchsorted(cumulative, budget, side="right"))
    dropped = min(dropped, support.size - 1)
    if dropped == 0:
        return support, values
    keep = np.ones(support.size, dtype=bool)
    keep[order[:dropped]] = False
    support = support[keep]
    values = values[keep]
    return support, values / values.sum()


class SparseBeliefState(BeliefState):
    """A belief stored as (support, probabilities) over packed states.

    Drop-in for :class:`~repro.core.observations.BeliefState` — all
    accessors work, and ``.probabilities`` materializes the dense vector
    on demand (cached) for consumers that need it.  Updates run fully in
    log space restricted to the support, then re-truncate within the
    state's ``epsilon`` budget.

    Parameters
    ----------
    facts:
        The facts this belief is about.
    probabilities:
        Dense array of ``2**n`` non-negative weights (the parent-class
        contract); normalized, sparsified and truncated on construction.
    epsilon:
        Per-update total-variation truncation budget, kept by every
        state derived from this one.
    """

    def __init__(
        self,
        facts: FactSet,
        probabilities: np.ndarray,
        epsilon: float = 0.0,
    ):
        probabilities = np.asarray(probabilities, dtype=np.float64)
        expected = 1 << len(facts)
        if probabilities.shape != (expected,):
            raise ValueError(
                f"expected {expected} probabilities for {len(facts)} "
                f"facts, got shape {probabilities.shape}"
            )
        if np.any(probabilities < -1e-12):
            raise ValueError("probabilities must be non-negative")
        if not 0.0 <= epsilon < 1.0:
            raise ValueError(
                f"epsilon must lie in [0, 1), got {epsilon}"
            )
        probabilities = np.clip(probabilities, 0.0, None)
        total = probabilities.sum()
        if total <= _EPSILON:
            raise ValueError(
                "probabilities sum to zero; belief is undefined"
            )
        support = np.flatnonzero(probabilities).astype(np.int64)
        values = probabilities[support] / total
        support, values = _truncated(support, values, float(epsilon))
        self._install(facts, support, values, float(epsilon))

    # ------------------------------------------------------------------
    # construction internals
    # ------------------------------------------------------------------

    def _install(
        self,
        facts: FactSet,
        support: np.ndarray,
        values: np.ndarray,
        epsilon: float,
    ) -> None:
        support.setflags(write=False)
        values.setflags(write=False)
        self._facts = facts
        self._support = support
        self._values = values
        self._epsilon = epsilon

    @classmethod
    def from_support(
        cls,
        facts: FactSet,
        support: np.ndarray,
        values: np.ndarray,
        epsilon: float,
    ) -> "SparseBeliefState":
        """Rebuild from an existing (support, probabilities) pair.

        Trusts the values verbatim (no renormalization, no truncation) —
        the sparse analogue of ``BeliefState.from_normalized``, used by
        checkpoint restores and shard-commit mirrors so serialization
        round-trips are bitwise exact.
        """
        support = np.asarray(support, dtype=np.int64).copy()
        values = np.asarray(values, dtype=np.float64).copy()
        if support.shape != values.shape or support.ndim != 1:
            raise ValueError("support and values must be 1-d and aligned")
        if support.size == 0:
            raise ValueError("sparse belief needs a non-empty support")
        if np.any(values <= 0.0):
            raise ValueError("sparse probabilities must be positive")
        if np.any(np.diff(support) <= 0):
            raise ValueError("support must be strictly increasing")
        if support[0] < 0 or support[-1] >= (1 << len(facts)):
            raise ValueError("support states out of range for fact set")
        state = cls.__new__(cls)
        state._install(facts, support, values, float(epsilon))
        return state

    def __reduce__(self):
        return (
            SparseBeliefState.from_support,
            (self._facts, self._support, self._values, self._epsilon),
        )

    # ------------------------------------------------------------------
    # sparse accessors
    # ------------------------------------------------------------------

    @property
    def support(self) -> np.ndarray:
        """Packed observation states carrying mass, ascending."""
        return self._support

    @property
    def sparse_probabilities(self) -> np.ndarray:
        """Probabilities aligned with :attr:`support`."""
        return self._values

    @property
    def epsilon(self) -> float:
        """The truncation budget inherited by updated states."""
        return self._epsilon

    @property
    def support_size(self) -> int:
        return int(self._support.size)

    def __getattr__(self, name: str):
        # Dense materialization is lazy: parent-class code paths that
        # read self._probs trigger it exactly once per state.
        if name != "_probs":
            raise AttributeError(name)
        dense = np.zeros(1 << len(self._facts), dtype=np.float64)
        dense[self._support] = self._values
        dense.setflags(write=False)
        self._probs = dense
        return dense

    # ------------------------------------------------------------------
    # overridden accessors (support-restricted fast paths)
    # ------------------------------------------------------------------

    @property
    def probabilities(self) -> np.ndarray:
        return self._probs

    @property
    def num_observations(self) -> int:
        return 1 << len(self._facts)

    def probability_of(self, assignment: Sequence[bool]) -> float:
        from .observations import observation_index

        state = observation_index(assignment)
        where = np.searchsorted(self._support, state)
        if where < self._support.size and self._support[where] == state:
            return float(self._values[where])
        return 0.0

    def marginal(self, fact_id: int) -> float:
        position = self._facts.position_of(fact_id)
        hit = (self._support >> np.int64(position)) & np.int64(1)
        return float(self._values[hit.astype(bool)].sum())

    def marginals(self) -> np.ndarray:
        bits = (
            (self._support[:, None] >> np.arange(len(self._facts), dtype=np.int64))
            & np.int64(1)
        ).astype(np.float64)
        return self._values @ bits

    def map_observation(self) -> int:
        return int(self._support[int(np.argmax(self._values))])

    def entropy_bits(self) -> float:
        """Shannon entropy in bits over the support (no zeros to skip)."""
        values = self._values / self._values.sum()
        return float(-(values * np.log2(values)).sum())

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def with_probabilities(self, probabilities: np.ndarray) -> "SparseBeliefState":
        return SparseBeliefState(
            self._facts, probabilities, epsilon=self._epsilon
        )

    def reweighted(self, likelihood: np.ndarray) -> "SparseBeliefState":
        likelihood = np.asarray(likelihood, dtype=np.float64)
        if likelihood.shape != (self.num_observations,):
            raise ValueError(
                "likelihood must have one entry per observation"
            )
        with np.errstate(divide="ignore"):
            log_likelihood = np.log(likelihood[self._support])
        return self.log_posterior(log_likelihood)

    def log_reweighted(self, log_likelihood: np.ndarray) -> "SparseBeliefState":
        log_likelihood = np.asarray(log_likelihood, dtype=np.float64)
        if log_likelihood.shape != (self.num_observations,):
            raise ValueError(
                "log likelihood must have one entry per observation"
            )
        return self.log_posterior(log_likelihood[self._support])

    def log_posterior(self, log_likelihood: np.ndarray) -> "SparseBeliefState":
        """Bayes update from a *support-aligned* log-likelihood vector.

        Never leaves log space until the final normalized
        exponentiation: ``posterior = exp(lp - logsumexp(lp))`` with
        ``lp = log prior + log likelihood``.  Raises ``ValueError`` when
        the likelihood is ``-inf`` everywhere on the support.
        """
        log_likelihood = np.asarray(log_likelihood, dtype=np.float64)
        if log_likelihood.shape != self._values.shape:
            raise ValueError(
                "log likelihood must have one entry per support state"
            )
        log_post = np.log(self._values) + log_likelihood
        peak = float(log_post.max())
        if not np.isfinite(peak):
            raise ValueError(
                "log likelihood is -inf everywhere the belief has mass; "
                "posterior is undefined"
            )
        log_norm = peak + float(np.log(np.exp(log_post - peak).sum()))
        values = np.exp(log_post - log_norm)
        keep = values > 0.0
        support, values = _truncated(
            self._support[keep], values[keep], self._epsilon
        )
        return SparseBeliefState.from_support(
            self._facts, support, values, self._epsilon
        )

    def __repr__(self) -> str:
        return (
            f"SparseBeliefState(num_facts={self.num_facts}, "
            f"support={self.support_size}/{self.num_observations}, "
            f"epsilon={self._epsilon:g})"
        )


def sparse_from_marginals(
    facts: FactSet,
    marginals: Sequence[float],
    epsilon: float,
    on_degenerate: Callable[[], None] | None = None,
) -> SparseBeliefState:
    """Product belief from per-fact marginals, built in log space.

    The sparse counterpart of ``BeliefState.from_marginals`` (Eq. 15):
    ``log P(s) = sum_i [bit_i(s) log m_i + (1 - bit_i(s)) log (1-m_i)]``
    accumulated over packed states, so extreme marginals cannot
    underflow the product.  A fully degenerate set of marginals (zero
    mass everywhere) falls back to the exact uniform belief and invokes
    ``on_degenerate``.
    """
    marginals = np.asarray(marginals, dtype=np.float64)
    if marginals.shape != (len(facts),):
        raise ValueError("need one marginal per fact")
    if np.any(marginals < 0) or np.any(marginals > 1):
        raise ValueError("marginals must lie in [0, 1]")
    states = np.arange(1 << len(facts), dtype=np.int64)
    log_joint = np.zeros(states.shape, dtype=np.float64)
    with np.errstate(divide="ignore"):
        log_yes = np.log(marginals)
        log_no = np.log(1.0 - marginals)
    for position in range(len(facts)):
        bit = ((states >> np.int64(position)) & np.int64(1)).astype(bool)
        log_joint += np.where(bit, log_yes[position], log_no[position])
    peak = float(log_joint.max())
    if not np.isfinite(peak):
        warnings.warn(
            "degenerate marginals: the joint product has zero mass "
            "everywhere; falling back to the uniform belief",
            RuntimeWarning,
            stacklevel=2,
        )
        if on_degenerate is not None:
            on_degenerate()
        size = states.size
        return SparseBeliefState(
            facts, np.full(size, 1.0 / size), epsilon=epsilon
        )
    log_norm = peak + float(np.log(np.exp(log_joint - peak).sum()))
    values = np.exp(log_joint - log_norm)
    keep = values > 0.0
    support, values = _truncated(
        states[keep], values[keep], float(epsilon)
    )
    return SparseBeliefState.from_support(facts, support, values, epsilon)


# ----------------------------------------------------------------------
# wire / checkpoint payloads
# ----------------------------------------------------------------------


def state_wire_payload(state: BeliefState):
    """The exact cross-process payload of a belief state.

    Dense states travel as their raw probability array (the historical
    wire shape, byte-pinned by the engine equivalence suites); sparse
    states travel as a tagged (support, values, epsilon) triple so a
    commit mirror or a respawned shard reconstructs the *same* sparse
    state instead of a dense approximation of it.
    """
    if isinstance(state, SparseBeliefState):
        return (
            "sparse",
            state.support,
            state.sparse_probabilities,
            state.epsilon,
        )
    return state.probabilities


def state_from_wire(facts: FactSet, payload) -> BeliefState:
    """Inverse of :func:`state_wire_payload` (bitwise exact)."""
    if isinstance(payload, tuple) and payload and payload[0] == "sparse":
        _tag, support, values, epsilon = payload
        return SparseBeliefState.from_support(
            facts, support, values, epsilon
        )
    return BeliefState.from_normalized(facts, payload)
