"""JSON serialization of beliefs, crowds and run histories.

Real checking campaigns run for days (humans answer slowly), so the
belief state and budget accounting must survive process restarts.
Everything here round-trips through plain JSON-compatible dictionaries:

* belief states and factored beliefs (facts + probabilities);
* crowds (worker ids + accuracies);
* round records / run histories.

:class:`~repro.simulation.online.OnlineCheckingSession` builds its
checkpoint support on these primitives.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

import numpy as np

from .facts import Fact, FactSet
from .hc import RoundRecord, RunResult
from .incidents import FaultEvent
from .observations import BeliefState, FactoredBelief
from .workers import Crowd, Worker

#: Format tag written into every serialized payload.  Version 2 adds
#: fault events on round records and the append-only session journal;
#: version 3 adds the trust-supervision state (worker posteriors,
#: circuit breakers, pending gold probes) to session checkpoints;
#: version 4 adds the parallel engine's ``{"kind": "engine"}`` journal
#: record (shard layout + jobs) and durable (fsynced) journal appends;
#: version 5 adds ``{"kind": "shard_incident"}`` journal records (shard
#: supervision audit trail + failover layout for resume) and the
#: supervision settings on the engine record;
#: version 6 adds the campaign service's ``{"kind": "tenant"}`` journal
#: record (tenant id, campaign name, priority, scheduling weight) so a
#: detached campaign can be re-admitted under the same identity;
#: version 7 adds the streaming runtime's records: a ``{"kind":
#: "stream"}`` config record (arrival/chaos/watermark settings), the
#: bootstrap-phase ``{"kind": "stream_checkpoint"}`` records written
#: before the first checking session exists, and a ``"stream"`` field on
#: session checkpoints carrying the event-log offset, watermark,
#: dedup state and incremental-initialization state so a streamed
#: campaign killed at any event boundary resumes exactly-once.
#: Older payloads are still read transparently.
FORMAT_VERSION = 7

#: Versions this build can read.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4, 5, 6, 7})


class SerializationError(ValueError):
    """Raised on malformed or version-incompatible payloads."""


def _require(payload: dict, key: str) -> Any:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise SerializationError(f"missing field {key!r}") from None


def check_version(payload: dict) -> int:
    """Validate a payload's ``version`` tag (missing == version 1).

    Returns the version; raises :class:`SerializationError` for
    payloads written by a newer (or unknown) format.
    """
    version = payload.get("version", 1) if isinstance(payload, dict) else 1
    if not isinstance(version, int) or version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported payload version {version!r} "
            f"(this build reads {sorted(SUPPORTED_VERSIONS)})"
        )
    return version


# ----------------------------------------------------------------------
# facts
# ----------------------------------------------------------------------


def fact_set_to_dict(facts: FactSet) -> dict:
    return {
        "facts": [
            {
                "fact_id": fact.fact_id,
                "instance_id": fact.instance_id,
                "label": fact.label,
                "text": fact.text,
            }
            for fact in facts
        ]
    }


def fact_set_from_dict(payload: dict) -> FactSet:
    entries = _require(payload, "facts")
    return FactSet(
        Fact(
            fact_id=int(_require(entry, "fact_id")),
            instance_id=entry.get("instance_id", ""),
            label=entry.get("label", "positive"),
            text=entry.get("text", ""),
        )
        for entry in entries
    )


# ----------------------------------------------------------------------
# beliefs
# ----------------------------------------------------------------------


def belief_state_to_dict(belief: BeliefState) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "fact_set": fact_set_to_dict(belief.facts),
        "probabilities": belief.probabilities.tolist(),
    }
    # Dense probabilities are the canonical stored form for both kernels
    # (``tolist`` round-trips float64 exactly).  Sparse states add their
    # truncation budget so resume rebuilds the same kernel; the key is
    # emitted only for sparse states, keeping epsilon=0 journal bytes
    # identical to the pre-kernel format.
    from .kernel import SparseBeliefState

    if isinstance(belief, SparseBeliefState):
        payload["epsilon"] = belief.epsilon
    return payload


def belief_state_from_dict(payload: dict) -> BeliefState:
    check_version(payload)
    facts = fact_set_from_dict(_require(payload, "fact_set"))
    probabilities = np.asarray(
        _require(payload, "probabilities"), dtype=np.float64
    )
    epsilon = payload.get("epsilon")
    if epsilon is not None:
        from .kernel import SparseBeliefState

        # The stored dense array is already truncated and renormalized;
        # reconstruct the support from its positive entries verbatim
        # (no re-truncation pass) so resume is bitwise faithful.
        support = np.flatnonzero(probabilities > 0.0).astype(np.int64)
        return SparseBeliefState.from_support(
            facts, support, probabilities[support], float(epsilon)
        )
    # Trust the stored normalization: re-dividing by a sum of 1 +/- ulp
    # would perturb the restored belief and break bitwise-identical
    # resume.
    return BeliefState.from_normalized(facts, probabilities)


def factored_belief_to_dict(belief: FactoredBelief) -> dict:
    return {
        "version": FORMAT_VERSION,
        "groups": [belief_state_to_dict(group) for group in belief],
    }


def factored_belief_from_dict(payload: dict) -> FactoredBelief:
    check_version(payload)
    groups = _require(payload, "groups")
    if not isinstance(groups, list) or not groups:
        raise SerializationError("groups must be a non-empty list")
    return FactoredBelief(
        belief_state_from_dict(group) for group in groups
    )


def atomic_write_json(payload: dict, path: str | Path) -> Path:
    """Durably write ``payload`` as JSON via write-to-temp + rename.

    The bytes are written to a temporary file in the destination
    directory, fsynced, and moved into place with :func:`os.replace`
    (atomic on POSIX), then the directory entry is fsynced too.  A crash
    at any point leaves either the old file or the new file — never a
    torn snapshot.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def save_belief(belief: FactoredBelief, path: str | Path) -> Path:
    """Atomically write a factored belief as JSON; returns the path."""
    return atomic_write_json(factored_belief_to_dict(belief), path)


def load_belief(path: str | Path) -> FactoredBelief:
    """Read a factored belief written by :func:`save_belief`."""
    with Path(path).open() as handle:
        return factored_belief_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# crowds
# ----------------------------------------------------------------------


def crowd_to_dict(crowd: Crowd) -> dict:
    return {
        "version": FORMAT_VERSION,
        "workers": [
            {"worker_id": worker.worker_id, "accuracy": worker.accuracy}
            for worker in crowd
        ],
    }


def crowd_from_dict(payload: dict) -> Crowd:
    check_version(payload)
    workers = _require(payload, "workers")
    return Crowd(
        Worker(
            worker_id=_require(entry, "worker_id"),
            accuracy=float(_require(entry, "accuracy")),
        )
        for entry in workers
    )


# ----------------------------------------------------------------------
# incidents
# ----------------------------------------------------------------------


def fault_event_to_dict(event: FaultEvent) -> dict:
    return {
        "kind": event.kind,
        "round_index": event.round_index,
        "attempt": event.attempt,
        "worker_id": event.worker_id,
        "fact_ids": list(event.fact_ids),
        "detail": event.detail,
    }


def fault_event_from_dict(payload: dict) -> FaultEvent:
    try:
        return FaultEvent(
            kind=str(_require(payload, "kind")),
            round_index=int(payload.get("round_index", -1)),
            attempt=int(payload.get("attempt", 0)),
            worker_id=payload.get("worker_id"),
            fact_ids=tuple(payload.get("fact_ids", ())),
            detail=str(payload.get("detail", "")),
        )
    except (TypeError, ValueError) as error:
        if isinstance(error, SerializationError):
            raise
        raise SerializationError(f"malformed fault event: {error}") from error


# ----------------------------------------------------------------------
# run histories
# ----------------------------------------------------------------------


def round_record_to_dict(record: RoundRecord) -> dict:
    payload = {
        "round_index": record.round_index,
        "query_fact_ids": list(record.query_fact_ids),
        "cost": record.cost,
        "budget_spent": record.budget_spent,
        "quality": record.quality,
        "accuracy": record.accuracy,
    }
    if record.fault_events:
        payload["fault_events"] = [
            fault_event_to_dict(event) for event in record.fault_events
        ]
    return payload


def round_record_from_dict(payload: dict) -> RoundRecord:
    return RoundRecord(
        round_index=int(_require(payload, "round_index")),
        query_fact_ids=tuple(_require(payload, "query_fact_ids")),
        cost=float(_require(payload, "cost")),
        budget_spent=float(_require(payload, "budget_spent")),
        quality=float(_require(payload, "quality")),
        accuracy=payload.get("accuracy"),
        fault_events=tuple(
            fault_event_from_dict(event)
            for event in payload.get("fault_events", ())
        ),
    )


def run_result_to_dict(result: RunResult) -> dict:
    return {
        "version": FORMAT_VERSION,
        "belief": factored_belief_to_dict(result.belief),
        "history": [
            round_record_to_dict(record) for record in result.history
        ],
    }


def run_result_from_dict(payload: dict) -> RunResult:
    check_version(payload)
    belief = factored_belief_from_dict(_require(payload, "belief"))
    history = [
        round_record_from_dict(record)
        for record in _require(payload, "history")
    ]
    return RunResult(belief=belief, history=history)


def save_run_result(result: RunResult, path: str | Path) -> Path:
    return atomic_write_json(run_result_to_dict(result), path)


def load_run_result(path: str | Path) -> RunResult:
    with Path(path).open() as handle:
        return run_result_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# session journal (format version 2)
# ----------------------------------------------------------------------
#
# An append-only JSONL file: one JSON object per line.  The first line
# is a ``{"kind": "header", "version": 2, ...}`` record; later lines
# are ``"checkpoint"`` (full durable session state) and ``"event"``
# (one fault incident) records.  A process killed mid-write leaves at
# most one truncated final line, which :func:`read_journal` discards —
# the previous checkpoint line is always intact, making resume
# crash-safe by construction.


def append_journal_record(path: str | Path, record: dict) -> None:
    """Append one record to a JSONL journal (creates parents/file).

    The record is written as a single line, flushed and fsynced before
    returning, so at most the final in-flight line can be lost to a
    crash — and a completed append survives power loss, not just a
    process kill.
    """
    if not isinstance(record, dict) or "kind" not in record:
        raise SerializationError("journal records need a 'kind' field")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, separators=(",", ":"))
    with path.open("a") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def repair_journal(path: str | Path) -> bool:
    """Truncate a torn trailing line left by a crash mid-append.

    :func:`read_journal` already *ignores* a malformed final line, but
    the bytes stay in the file — and the next
    :func:`append_journal_record` would glue its record onto the torn
    fragment, corrupting the journal.  Resuming runtimes call this
    first so their appends continue the journal byte-identically to an
    uninterrupted run.  Returns ``True`` when bytes were removed.
    """
    path = Path(path)
    if not path.exists():
        return False
    raw = path.read_bytes()
    end = len(raw)
    while end > 0:
        newline = raw.rfind(b"\n", 0, end)
        if newline == end - 1:
            # The final line is terminated; keep it if it parses.
            previous = raw.rfind(b"\n", 0, newline)
            try:
                json.loads(raw[previous + 1 : newline])
                break
            except json.JSONDecodeError:
                end = previous + 1
        else:
            end = newline + 1  # drop the unterminated tail
    if end == len(raw):
        return False
    with path.open("r+b") as handle:
        handle.truncate(end)
        handle.flush()
        os.fsync(handle.fileno())
    return True


def trim_journal_to_last_checkpoint(path: str | Path) -> int:
    """Drop journal records trailing the last intact checkpoint.

    A crash can land between a checkpoint and the next one, leaving the
    in-flight round's event records journaled.  Resume replays that
    round from the checkpoint and re-journals the same records
    byte-for-byte (the replay is deterministic: the checkpoint rewinds
    the session, fault and answer-source RNG states), so the trailing
    lines are removed first — otherwise they would appear twice and the
    resumed journal could never match an uninterrupted run's.  Call
    :func:`repair_journal` first; returns the number of bytes removed.
    """
    path = Path(path)
    raw = path.read_bytes()
    offset = 0
    end = None
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if isinstance(record, dict) and record.get("kind") == "checkpoint":
            end = offset
    if end is None or end == len(raw):
        return 0
    with path.open("r+b") as handle:
        handle.truncate(end)
        handle.flush()
        os.fsync(handle.fileno())
    return len(raw) - end


def read_journal(path: str | Path) -> list[dict]:
    """Read a JSONL journal written by :func:`append_journal_record`.

    A malformed *final* line (the signature of a crash mid-append) is
    silently dropped; a malformed line anywhere else raises
    :class:`SerializationError`.  The header's version is validated.
    """
    path = Path(path)
    records: list[dict] = []
    with path.open() as handle:
        lines = handle.read().splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break  # torn final write from a crash; ignore
            raise SerializationError(
                f"corrupt journal line {index + 1}: {error}"
            ) from error
        if not isinstance(record, dict) or "kind" not in record:
            raise SerializationError(
                f"journal line {index + 1} is not a record object"
            )
        records.append(record)
    if not records:
        raise SerializationError(f"journal {path} contains no records")
    header = records[0]
    if header.get("kind") != "header":
        raise SerializationError("journal does not start with a header")
    check_version(header)
    return records
