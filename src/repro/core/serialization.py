"""JSON serialization of beliefs, crowds and run histories.

Real checking campaigns run for days (humans answer slowly), so the
belief state and budget accounting must survive process restarts.
Everything here round-trips through plain JSON-compatible dictionaries:

* belief states and factored beliefs (facts + probabilities);
* crowds (worker ids + accuracies);
* round records / run histories.

:class:`~repro.simulation.online.OnlineCheckingSession` builds its
checkpoint support on these primitives.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from ..storage.chaos import active_storage_chaos
from .facts import Fact, FactSet
from .hc import RoundRecord, RunResult
from .incidents import FaultEvent
from .observations import BeliefState, FactoredBelief
from .workers import Crowd, Worker

#: Format tag written into every serialized payload.  Version 2 adds
#: fault events on round records and the append-only session journal;
#: version 3 adds the trust-supervision state (worker posteriors,
#: circuit breakers, pending gold probes) to session checkpoints;
#: version 4 adds the parallel engine's ``{"kind": "engine"}`` journal
#: record (shard layout + jobs) and durable (fsynced) journal appends;
#: version 5 adds ``{"kind": "shard_incident"}`` journal records (shard
#: supervision audit trail + failover layout for resume) and the
#: supervision settings on the engine record;
#: version 6 adds the campaign service's ``{"kind": "tenant"}`` journal
#: record (tenant id, campaign name, priority, scheduling weight) so a
#: detached campaign can be re-admitted under the same identity;
#: version 7 adds the streaming runtime's records: a ``{"kind":
#: "stream"}`` config record (arrival/chaos/watermark settings), the
#: bootstrap-phase ``{"kind": "stream_checkpoint"}`` records written
#: before the first checking session exists, and a ``"stream"`` field on
#: session checkpoints carrying the event-log offset, watermark,
#: dedup state and incremental-initialization state so a streamed
#: campaign killed at any event boundary resumes exactly-once;
#: version 8 adds per-record integrity framing to the journal: every
#: line carries a monotonic ``"_seq"`` sequence number and a
#: ``"_crc"`` CRC32 of the rest of the line, so interior bit-flips,
#: dropped lines and duplicated lines are *detectable* (see
#: :mod:`repro.storage.integrity`), not just torn tails.  v8 journals
#: stay line-oriented JSONL — ``kind``-dispatching tooling reads them
#: unchanged — and journals whose header predates v8 keep appending
#: unframed lines so legacy byte-identity is preserved.
#: Older payloads are still read transparently.
FORMAT_VERSION = 8

#: Versions this build can read.
SUPPORTED_VERSIONS = frozenset({1, 2, 3, 4, 5, 6, 7, 8})


class SerializationError(ValueError):
    """Raised on malformed or version-incompatible payloads."""


class StorageFailure(RuntimeError):
    """A durable write could not be completed (fail-stop).

    Raised by :func:`append_journal_record` / :func:`atomic_write_json`
    after bounded retries on transient ``OSError`` faults, or
    immediately on non-transient ones (``ENOSPC``, permission errors).
    The write path never leaves a silent partial state behind: a torn
    append is rolled back to the pre-append size before this raises,
    and if even the rollback fails a ``<journal>.failstop.json`` marker
    is dropped next to the file so recovery tooling knows the tail is
    suspect.
    """

    def __init__(self, message: str, *, path: "Path | None" = None,
                 attempts: int = 0):
        super().__init__(message)
        self.path = path
        self.attempts = attempts


def _require(payload: dict, key: str) -> Any:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise SerializationError(f"missing field {key!r}") from None


def check_version(payload: dict) -> int:
    """Validate a payload's ``version`` tag (missing == version 1).

    Returns the version; raises :class:`SerializationError` for
    payloads written by a newer (or unknown) format.
    """
    version = payload.get("version", 1) if isinstance(payload, dict) else 1
    if not isinstance(version, int) or version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"unsupported payload version {version!r} "
            f"(this build reads {sorted(SUPPORTED_VERSIONS)})"
        )
    return version


# ----------------------------------------------------------------------
# facts
# ----------------------------------------------------------------------


def fact_set_to_dict(facts: FactSet) -> dict:
    return {
        "facts": [
            {
                "fact_id": fact.fact_id,
                "instance_id": fact.instance_id,
                "label": fact.label,
                "text": fact.text,
            }
            for fact in facts
        ]
    }


def fact_set_from_dict(payload: dict) -> FactSet:
    entries = _require(payload, "facts")
    return FactSet(
        Fact(
            fact_id=int(_require(entry, "fact_id")),
            instance_id=entry.get("instance_id", ""),
            label=entry.get("label", "positive"),
            text=entry.get("text", ""),
        )
        for entry in entries
    )


# ----------------------------------------------------------------------
# beliefs
# ----------------------------------------------------------------------


def belief_state_to_dict(belief: BeliefState) -> dict:
    payload = {
        "version": FORMAT_VERSION,
        "fact_set": fact_set_to_dict(belief.facts),
        "probabilities": belief.probabilities.tolist(),
    }
    # Dense probabilities are the canonical stored form for both kernels
    # (``tolist`` round-trips float64 exactly).  Sparse states add their
    # truncation budget so resume rebuilds the same kernel; the key is
    # emitted only for sparse states, keeping epsilon=0 journal bytes
    # identical to the pre-kernel format.
    from .kernel import SparseBeliefState

    if isinstance(belief, SparseBeliefState):
        payload["epsilon"] = belief.epsilon
    return payload


def belief_state_from_dict(payload: dict) -> BeliefState:
    check_version(payload)
    facts = fact_set_from_dict(_require(payload, "fact_set"))
    probabilities = np.asarray(
        _require(payload, "probabilities"), dtype=np.float64
    )
    epsilon = payload.get("epsilon")
    if epsilon is not None:
        from .kernel import SparseBeliefState

        # The stored dense array is already truncated and renormalized;
        # reconstruct the support from its positive entries verbatim
        # (no re-truncation pass) so resume is bitwise faithful.
        support = np.flatnonzero(probabilities > 0.0).astype(np.int64)
        return SparseBeliefState.from_support(
            facts, support, probabilities[support], float(epsilon)
        )
    # Trust the stored normalization: re-dividing by a sum of 1 +/- ulp
    # would perturb the restored belief and break bitwise-identical
    # resume.
    return BeliefState.from_normalized(facts, probabilities)


def factored_belief_to_dict(belief: FactoredBelief) -> dict:
    return {
        "version": FORMAT_VERSION,
        "groups": [belief_state_to_dict(group) for group in belief],
    }


def factored_belief_from_dict(payload: dict) -> FactoredBelief:
    check_version(payload)
    groups = _require(payload, "groups")
    if not isinstance(groups, list) or not groups:
        raise SerializationError("groups must be a non-empty list")
    return FactoredBelief(
        belief_state_from_dict(group) for group in groups
    )


#: Errnos worth retrying a durable write over; anything else (ENOSPC,
#: EROFS, EACCES, ...) fails the write immediately — retrying cannot
#: help, and pretending it succeeded would be a silent partial state.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EINTR, errno.EAGAIN, errno.EIO, errno.EBUSY, errno.ETIMEDOUT}
)

#: Bounded retry envelope for one durable write.
_WRITE_ATTEMPTS = 5
_RETRY_BACKOFF = 0.001  # seconds; doubles per attempt


def _retry_delay(attempt: int) -> None:
    time.sleep(_RETRY_BACKOFF * (2**attempt))


def _write_failstop_marker(path: Path, reason: str) -> None:
    """Best-effort ``<path>.failstop.json`` sidecar for an append whose
    rollback failed — the journal tail can no longer be trusted, and
    the marker is how recovery tooling learns that without relying on
    the (possibly also failing) journal itself."""
    marker = path.with_name(path.name + ".failstop.json")
    try:
        marker.write_text(
            json.dumps(
                {"kind": "failstop", "path": str(path), "reason": reason}
            )
        )
    except OSError:
        pass  # the disk is gone; the raised StorageFailure must do


def atomic_write_json(payload: dict, path: str | Path) -> Path:
    """Durably write ``payload`` as JSON via write-to-temp + rename.

    The bytes are written to a temporary file in the destination
    directory, fsynced, and moved into place with :func:`os.replace`
    (atomic on POSIX), then the directory entry is fsynced too.  A crash
    at any point leaves either the old file or the new file — never a
    torn snapshot.

    Transient storage faults (including injected ones — see
    :mod:`repro.storage.chaos`) retry the whole temp + rename cycle up
    to ``_WRITE_ATTEMPTS`` times with exponential backoff; a
    non-transient fault or exhausted retries raise
    :class:`StorageFailure`, with the previous file intact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    chaos = active_storage_chaos()
    last_error: OSError | None = None
    for attempt in range(_WRITE_ATTEMPTS):
        action = key = None
        index = 0
        if chaos is not None:
            action, key, index = chaos.next_action(path)
        try:
            _atomic_write_once(payload, path, chaos, action, key, index)
        except OSError as error:
            last_error = error
            if error.errno not in _TRANSIENT_ERRNOS:
                raise StorageFailure(
                    f"checkpoint write to {path} failed with a "
                    f"non-transient fault: {error}",
                    path=path,
                    attempts=attempt + 1,
                ) from error
            if attempt + 1 < _WRITE_ATTEMPTS:
                _retry_delay(attempt)
            continue
        _fsync_directory(path.parent)
        return path
    raise StorageFailure(
        f"checkpoint write to {path} still failing after "
        f"{_WRITE_ATTEMPTS} attempts: {last_error}",
        path=path,
        attempts=_WRITE_ATTEMPTS,
    ) from last_error


def _atomic_write_once(
    payload: dict, path: Path, chaos, action, key, index
) -> None:
    data = json.dumps(payload).encode("utf-8")
    if action == "enospc":
        raise OSError(errno.ENOSPC, "injected ENOSPC (storage chaos)")
    if action == "bitflip":
        data = chaos.plan.flip_bit(data, key, index)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if action == "short_write":
                handle.write(data[: max(1, len(data) // 2)])
                handle.flush()
                raise OSError(
                    errno.EIO, "injected short write (storage chaos)"
                )
            handle.write(data)
            handle.flush()
            if action == "fsync_error":
                raise OSError(
                    errno.EIO, "injected fsync failure (storage chaos)"
                )
            os.fsync(handle.fileno())
        if action == "rename_error":
            raise OSError(
                errno.EIO, "injected rename failure (storage chaos)"
            )
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def save_belief(belief: FactoredBelief, path: str | Path) -> Path:
    """Atomically write a factored belief as JSON; returns the path."""
    return atomic_write_json(factored_belief_to_dict(belief), path)


def load_belief(path: str | Path) -> FactoredBelief:
    """Read a factored belief written by :func:`save_belief`."""
    with Path(path).open() as handle:
        return factored_belief_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# crowds
# ----------------------------------------------------------------------


def crowd_to_dict(crowd: Crowd) -> dict:
    return {
        "version": FORMAT_VERSION,
        "workers": [
            {"worker_id": worker.worker_id, "accuracy": worker.accuracy}
            for worker in crowd
        ],
    }


def crowd_from_dict(payload: dict) -> Crowd:
    check_version(payload)
    workers = _require(payload, "workers")
    return Crowd(
        Worker(
            worker_id=_require(entry, "worker_id"),
            accuracy=float(_require(entry, "accuracy")),
        )
        for entry in workers
    )


# ----------------------------------------------------------------------
# incidents
# ----------------------------------------------------------------------


def fault_event_to_dict(event: FaultEvent) -> dict:
    return {
        "kind": event.kind,
        "round_index": event.round_index,
        "attempt": event.attempt,
        "worker_id": event.worker_id,
        "fact_ids": list(event.fact_ids),
        "detail": event.detail,
    }


def fault_event_from_dict(payload: dict) -> FaultEvent:
    try:
        return FaultEvent(
            kind=str(_require(payload, "kind")),
            round_index=int(payload.get("round_index", -1)),
            attempt=int(payload.get("attempt", 0)),
            worker_id=payload.get("worker_id"),
            fact_ids=tuple(payload.get("fact_ids", ())),
            detail=str(payload.get("detail", "")),
        )
    except (TypeError, ValueError) as error:
        if isinstance(error, SerializationError):
            raise
        raise SerializationError(f"malformed fault event: {error}") from error


# ----------------------------------------------------------------------
# run histories
# ----------------------------------------------------------------------


def round_record_to_dict(record: RoundRecord) -> dict:
    payload = {
        "round_index": record.round_index,
        "query_fact_ids": list(record.query_fact_ids),
        "cost": record.cost,
        "budget_spent": record.budget_spent,
        "quality": record.quality,
        "accuracy": record.accuracy,
    }
    if record.fault_events:
        payload["fault_events"] = [
            fault_event_to_dict(event) for event in record.fault_events
        ]
    return payload


def round_record_from_dict(payload: dict) -> RoundRecord:
    return RoundRecord(
        round_index=int(_require(payload, "round_index")),
        query_fact_ids=tuple(_require(payload, "query_fact_ids")),
        cost=float(_require(payload, "cost")),
        budget_spent=float(_require(payload, "budget_spent")),
        quality=float(_require(payload, "quality")),
        accuracy=payload.get("accuracy"),
        fault_events=tuple(
            fault_event_from_dict(event)
            for event in payload.get("fault_events", ())
        ),
    )


def run_result_to_dict(result: RunResult) -> dict:
    return {
        "version": FORMAT_VERSION,
        "belief": factored_belief_to_dict(result.belief),
        "history": [
            round_record_to_dict(record) for record in result.history
        ],
    }


def run_result_from_dict(payload: dict) -> RunResult:
    check_version(payload)
    belief = factored_belief_from_dict(_require(payload, "belief"))
    history = [
        round_record_from_dict(record)
        for record in _require(payload, "history")
    ]
    return RunResult(belief=belief, history=history)


def save_run_result(result: RunResult, path: str | Path) -> Path:
    return atomic_write_json(run_result_to_dict(result), path)


def load_run_result(path: str | Path) -> RunResult:
    with Path(path).open() as handle:
        return run_result_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# session journal (format version 2)
# ----------------------------------------------------------------------
#
# An append-only JSONL file: one JSON object per line.  The first line
# is a ``{"kind": "header", "version": 2, ...}`` record; later lines
# are ``"checkpoint"`` (full durable session state) and ``"event"``
# (one fault incident) records.  A process killed mid-write leaves at
# most one truncated final line, which :func:`read_journal` discards —
# the previous checkpoint line is always intact, making resume
# crash-safe by construction.
#
# Since format version 8 every line additionally carries the integrity
# framing: a ``"_seq"`` field (0 on the header, +1 per record) and a
# trailing ``"_crc"`` field holding the CRC32 (hex) of the line with
# the ``"_crc"`` entry removed.  Framing makes interior damage —
# bit-flips, dropped lines, duplicated lines — *detectable*;
# :mod:`repro.storage.integrity` turns detection into recovery.
# Framed journals are still plain JSONL and :func:`read_journal`
# strips the framing fields, so every ``kind``-dispatching consumer is
# untouched.  Whether a journal is framed is decided once, by its
# header: new journals frame iff the header's version is >= 8, and
# appends to an existing journal follow whatever its last record did —
# a resumed v7 journal keeps growing unframed, byte-identical to an
# uninterrupted v7 run.

#: Fields reserved for the v8 integrity framing.
_FRAME_FIELDS = ("_seq", "_crc")

#: Per-path append cache: ``str(path) -> (file_size, next_seq)`` where
#: ``next_seq`` is ``None`` for unframed journals.  Validated against
#: the current file size on every append (an externally modified file
#: misses and triggers a rescan), so appends stay O(1) without ever
#: trusting a stale sequence number.
_SEQ_CACHE: dict[str, tuple[int, int | None]] = {}


def invalidate_journal_cache(path: str | Path) -> None:
    """Drop the append cache for ``path`` (after external surgery —
    repair, trim, recovery — changed the file behind the cache)."""
    _SEQ_CACHE.pop(str(Path(path)), None)


def frame_journal_line(record: dict, seq: int) -> str:
    """``record`` as a v8-framed JSONL line (no trailing newline).

    The CRC is computed over the serialized line *without* the
    ``"_crc"`` entry, then spliced in as the final key — verification
    re-serializes the parsed line minus ``"_crc"`` and compares, which
    round-trips exactly for self-produced lines (``json`` preserves key
    order and emits canonical shortest-round-trip numbers).
    """
    body = dict(record)
    body["_seq"] = int(seq)
    payload = json.dumps(body, separators=(",", ":"))
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f'{payload[:-1]},"_crc":"{crc:08x}"}}'


def verify_framed_record(record: dict) -> str | None:
    """Check one parsed framed record; ``None`` if intact.

    Returns a damage kind (``"unframed"`` / ``"crc_mismatch"``) when
    the framing is missing or the CRC does not cover the line's
    current content — the signature of an interior bit-flip.
    """
    crc_text = record.get("_crc")
    if not isinstance(crc_text, str) or not isinstance(
        record.get("_seq"), int
    ):
        return "unframed"
    body = {key: value for key, value in record.items() if key != "_crc"}
    payload = json.dumps(body, separators=(",", ":"))
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return "crc_mismatch"
    if (zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF) != expected:
        return "crc_mismatch"
    return None


def strip_frame(record: dict) -> dict:
    """``record`` without the v8 framing fields (no-op when unframed)."""
    if "_seq" not in record and "_crc" not in record:
        return record
    return {
        key: value
        for key, value in record.items()
        if key not in _FRAME_FIELDS
    }


def _journal_next_seq(path: Path, record: dict) -> int | None:
    """The sequence number the next append must carry (``None``:
    journal is unframed).  New/empty files frame iff the first record
    is a header of version >= 8; existing files follow the last
    parseable line."""
    key = str(path)
    try:
        size = path.stat().st_size
    except OSError:
        size = 0
    if size == 0:
        if record.get("kind") == "header":
            try:
                version = int(record.get("version", 1))
            except (TypeError, ValueError):
                version = 1
            if version >= 8:
                return 0
        return None
    cached = _SEQ_CACHE.get(key)
    if cached is not None and cached[0] == size:
        return cached[1]
    next_seq: int | None = None
    for line in reversed(path.read_bytes().splitlines()):
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue  # torn/corrupt tail; recovery trims before appends
        if isinstance(parsed, dict) and isinstance(
            parsed.get("_seq"), int
        ):
            next_seq = parsed["_seq"] + 1
        break
    _SEQ_CACHE[key] = (size, next_seq)
    return next_seq


def append_journal_record(path: str | Path, record: dict) -> None:
    """Append one record to a JSONL journal (creates parents/file).

    The record is written as a single line, flushed and fsynced before
    returning, so at most the final in-flight line can be lost to a
    crash — and a completed append survives power loss, not just a
    process kill.  On v8 journals the line carries the integrity
    framing (see :func:`frame_journal_line`).

    Transient storage faults retry with backoff after rolling the file
    back to its pre-append size; non-transient faults and exhausted
    retries raise :class:`StorageFailure` — again after rollback, so a
    failed append never leaves a torn line for the next writer to glue
    onto.
    """
    if not isinstance(record, dict) or "kind" not in record:
        raise SerializationError("journal records need a 'kind' field")
    for reserved in _FRAME_FIELDS:
        if reserved in record:
            raise SerializationError(
                f"{reserved!r} is reserved for the journal framing"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    seq = _journal_next_seq(path, record)
    line = (
        frame_journal_line(record, seq)
        if seq is not None
        else json.dumps(record, separators=(",", ":"))
    )
    size = _durable_append(path, (line + "\n").encode("utf-8"))
    _SEQ_CACHE[str(path)] = (size, seq + 1 if seq is not None else None)


def _durable_append(path: Path, data: bytes) -> int:
    """Append ``data`` with flush + fsync; returns the new file size.

    The storage-chaos hook lives here: every attempt draws one action
    for this path's next write index, injected faults roll the file
    back and (when transient) retry, and a ``bitflip`` goes through
    "successfully" — silent corruption is exactly what the v8 framing
    exists to catch later.
    """
    try:
        base_size = path.stat().st_size
    except OSError:
        base_size = 0
    chaos = active_storage_chaos()
    last_error: OSError | None = None
    for attempt in range(_WRITE_ATTEMPTS):
        action = key = None
        index = 0
        if chaos is not None:
            action, key, index = chaos.next_action(path)
        try:
            payload = data
            if action == "enospc":
                raise OSError(
                    errno.ENOSPC, "injected ENOSPC (storage chaos)"
                )
            if action == "bitflip":
                payload = chaos.plan.flip_bit(data, key, index)
            with path.open("ab") as handle:
                if action == "short_write":
                    handle.write(payload[: max(1, len(payload) // 2)])
                    handle.flush()
                    raise OSError(
                        errno.EIO, "injected short write (storage chaos)"
                    )
                handle.write(payload)
                handle.flush()
                if action == "fsync_error":
                    raise OSError(
                        errno.EIO,
                        "injected fsync failure (storage chaos)",
                    )
                os.fsync(handle.fileno())
            return base_size + len(payload)
        except OSError as error:
            last_error = error
            _rollback_partial_append(path, base_size)
            if error.errno not in _TRANSIENT_ERRNOS:
                raise StorageFailure(
                    f"append to {path} failed with a non-transient "
                    f"fault: {error}",
                    path=path,
                    attempts=attempt + 1,
                ) from error
            if attempt + 1 < _WRITE_ATTEMPTS:
                _retry_delay(attempt)
    raise StorageFailure(
        f"append to {path} still failing after {_WRITE_ATTEMPTS} "
        f"attempts: {last_error}",
        path=path,
        attempts=_WRITE_ATTEMPTS,
    ) from last_error


def _rollback_partial_append(path: Path, size: int) -> None:
    """Truncate a failed append back to the pre-append size.

    If even this fails, the journal tail is untrustworthy and nothing
    in-process can fix it: drop a ``.failstop.json`` marker and
    fail-stop.
    """
    invalidate_journal_cache(path)
    try:
        current = path.stat().st_size
    except OSError:
        return  # the file never materialized; nothing to roll back
    if current <= size:
        return
    try:
        with path.open("r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as error:
        _write_failstop_marker(
            path, f"rollback of a torn append to {size} bytes failed: "
            f"{error}"
        )
        raise StorageFailure(
            f"could not roll back a torn append to {path}: {error}",
            path=path,
        ) from error


def repair_journal(path: str | Path) -> bool:
    """Truncate a torn trailing line left by a crash mid-append.

    :func:`read_journal` already *ignores* a malformed final line, but
    the bytes stay in the file — and the next
    :func:`append_journal_record` would glue its record onto the torn
    fragment, corrupting the journal.  Resuming runtimes call this
    first so their appends continue the journal byte-identically to an
    uninterrupted run.  Returns ``True`` when bytes were removed.
    """
    path = Path(path)
    if not path.exists():
        return False
    raw = path.read_bytes()
    end = len(raw)
    while end > 0:
        newline = raw.rfind(b"\n", 0, end)
        if newline == end - 1:
            # The final line is terminated; keep it if it parses.
            previous = raw.rfind(b"\n", 0, newline)
            try:
                json.loads(raw[previous + 1 : newline])
                break
            except json.JSONDecodeError:
                end = previous + 1
        else:
            end = newline + 1  # drop the unterminated tail
    if end == len(raw):
        return False
    with path.open("r+b") as handle:
        handle.truncate(end)
        handle.flush()
        os.fsync(handle.fileno())
    # A crash right after the truncate could otherwise resurrect the
    # torn tail on filesystems that journal directory metadata lazily.
    _fsync_directory(path.parent)
    invalidate_journal_cache(path)
    return True


def trim_journal_to_last_checkpoint(path: str | Path) -> int:
    """Drop journal records trailing the last intact checkpoint.

    A crash can land between a checkpoint and the next one, leaving the
    in-flight round's event records journaled.  Resume replays that
    round from the checkpoint and re-journals the same records
    byte-for-byte (the replay is deterministic: the checkpoint rewinds
    the session, fault and answer-source RNG states), so the trailing
    lines are removed first — otherwise they would appear twice and the
    resumed journal could never match an uninterrupted run's.  Call
    :func:`repair_journal` first; returns the number of bytes removed.
    """
    path = Path(path)
    raw = path.read_bytes()
    offset = 0
    end = None
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if isinstance(record, dict) and record.get("kind") == "checkpoint":
            end = offset
    if end is None or end == len(raw):
        return 0
    with path.open("r+b") as handle:
        handle.truncate(end)
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_directory(path.parent)
    invalidate_journal_cache(path)
    return len(raw) - end


def read_journal(path: str | Path) -> list[dict]:
    """Read a JSONL journal written by :func:`append_journal_record`.

    A malformed *final* line (the signature of a crash mid-append) is
    silently dropped; a malformed line anywhere else raises
    :class:`SerializationError`.  The header's version is validated.

    On a framed (v8) journal every record's CRC and sequence number
    are verified — an interior bit-flip, dropped line or duplicated
    line raises :class:`SerializationError` instead of feeding
    corrupted state into a resume (callers that want salvage instead
    of refusal run :func:`repro.storage.integrity.recover_journal`
    first).  The framing fields are stripped from the returned
    records, so consumers see the same shapes as for v1–v7 journals.
    """
    path = Path(path)
    records: list[dict] = []
    raw = path.read_bytes()
    try:
        lines = raw.decode("utf-8").splitlines()
    except UnicodeDecodeError as error:
        # A bit-flip in a high bit leaves invalid UTF-8 — corruption,
        # not a programming error.
        raise SerializationError(
            f"corrupt journal {path}: {error}"
        ) from error
    # An unterminated final line is torn even when the cut happened to
    # land right on the record's closing brace — repair_journal and
    # verify_journal drop it, so the reader must agree.
    torn_tail = bool(raw) and not raw.endswith(b"\n")
    framed = False
    expected_seq = 0
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        if torn_tail and index == len(lines) - 1:
            break
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if index == len(lines) - 1:
                break  # torn final write from a crash; ignore
            raise SerializationError(
                f"corrupt journal line {index + 1}: {error}"
            ) from error
        if not isinstance(record, dict) or "kind" not in record:
            raise SerializationError(
                f"journal line {index + 1} is not a record object"
            )
        if not records:
            # The header decides: v8+ journals are framed throughout.
            # Detection is deliberately redundant — a supported v8+
            # version declaration OR the presence of either frame
            # field (legacy journals can never carry them; appends
            # reject the reserved keys).  A single bit-flip can erase
            # one signal but not both, so header damage reads as
            # corruption instead of quietly demoting the journal to
            # unverifiable legacy.  Unsupported versions without frame
            # fields stay unframed so the post-loop version validation
            # raises the accurate error.
            version = record.get("version", 1)
            framed = (
                (version in SUPPORTED_VERSIONS and version >= 8)
                or "_seq" in record
                or "_crc" in record
            )
        if framed:
            damage = verify_framed_record(record)
            if damage is not None:
                raise SerializationError(
                    f"corrupt journal line {index + 1}: {damage}"
                )
            seq = record["_seq"]
            if seq != expected_seq:
                kind = (
                    "duplicate record"
                    if seq < expected_seq
                    else "sequence gap"
                )
                raise SerializationError(
                    f"corrupt journal line {index + 1}: {kind} "
                    f"(expected seq {expected_seq}, found {seq})"
                )
            expected_seq += 1
            record = strip_frame(record)
        records.append(record)
    if not records:
        raise SerializationError(f"journal {path} contains no records")
    header = records[0]
    if header.get("kind") != "header":
        raise SerializationError("journal does not start with a header")
    check_version(header)
    return records
