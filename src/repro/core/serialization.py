"""JSON serialization of beliefs, crowds and run histories.

Real checking campaigns run for days (humans answer slowly), so the
belief state and budget accounting must survive process restarts.
Everything here round-trips through plain JSON-compatible dictionaries:

* belief states and factored beliefs (facts + probabilities);
* crowds (worker ids + accuracies);
* round records / run histories.

:class:`~repro.simulation.online.OnlineCheckingSession` builds its
checkpoint support on these primitives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from .facts import Fact, FactSet
from .hc import RoundRecord, RunResult
from .observations import BeliefState, FactoredBelief
from .workers import Crowd, Worker

#: Format tag written into every serialized payload.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised on malformed or version-incompatible payloads."""


def _require(payload: dict, key: str) -> Any:
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise SerializationError(f"missing field {key!r}") from None


# ----------------------------------------------------------------------
# facts
# ----------------------------------------------------------------------


def fact_set_to_dict(facts: FactSet) -> dict:
    return {
        "facts": [
            {
                "fact_id": fact.fact_id,
                "instance_id": fact.instance_id,
                "label": fact.label,
                "text": fact.text,
            }
            for fact in facts
        ]
    }


def fact_set_from_dict(payload: dict) -> FactSet:
    entries = _require(payload, "facts")
    return FactSet(
        Fact(
            fact_id=int(_require(entry, "fact_id")),
            instance_id=entry.get("instance_id", ""),
            label=entry.get("label", "positive"),
            text=entry.get("text", ""),
        )
        for entry in entries
    )


# ----------------------------------------------------------------------
# beliefs
# ----------------------------------------------------------------------


def belief_state_to_dict(belief: BeliefState) -> dict:
    return {
        "version": FORMAT_VERSION,
        "fact_set": fact_set_to_dict(belief.facts),
        "probabilities": belief.probabilities.tolist(),
    }


def belief_state_from_dict(payload: dict) -> BeliefState:
    facts = fact_set_from_dict(_require(payload, "fact_set"))
    probabilities = np.asarray(
        _require(payload, "probabilities"), dtype=np.float64
    )
    return BeliefState(facts, probabilities)


def factored_belief_to_dict(belief: FactoredBelief) -> dict:
    return {
        "version": FORMAT_VERSION,
        "groups": [belief_state_to_dict(group) for group in belief],
    }


def factored_belief_from_dict(payload: dict) -> FactoredBelief:
    groups = _require(payload, "groups")
    if not isinstance(groups, list) or not groups:
        raise SerializationError("groups must be a non-empty list")
    return FactoredBelief(
        belief_state_from_dict(group) for group in groups
    )


def save_belief(belief: FactoredBelief, path: str | Path) -> Path:
    """Write a factored belief as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(factored_belief_to_dict(belief), handle)
    return path


def load_belief(path: str | Path) -> FactoredBelief:
    """Read a factored belief written by :func:`save_belief`."""
    with Path(path).open() as handle:
        return factored_belief_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# crowds
# ----------------------------------------------------------------------


def crowd_to_dict(crowd: Crowd) -> dict:
    return {
        "version": FORMAT_VERSION,
        "workers": [
            {"worker_id": worker.worker_id, "accuracy": worker.accuracy}
            for worker in crowd
        ],
    }


def crowd_from_dict(payload: dict) -> Crowd:
    workers = _require(payload, "workers")
    return Crowd(
        Worker(
            worker_id=_require(entry, "worker_id"),
            accuracy=float(_require(entry, "accuracy")),
        )
        for entry in workers
    )


# ----------------------------------------------------------------------
# run histories
# ----------------------------------------------------------------------


def round_record_to_dict(record: RoundRecord) -> dict:
    return {
        "round_index": record.round_index,
        "query_fact_ids": list(record.query_fact_ids),
        "cost": record.cost,
        "budget_spent": record.budget_spent,
        "quality": record.quality,
        "accuracy": record.accuracy,
    }


def round_record_from_dict(payload: dict) -> RoundRecord:
    return RoundRecord(
        round_index=int(_require(payload, "round_index")),
        query_fact_ids=tuple(_require(payload, "query_fact_ids")),
        cost=float(_require(payload, "cost")),
        budget_spent=float(_require(payload, "budget_spent")),
        quality=float(_require(payload, "quality")),
        accuracy=payload.get("accuracy"),
    )


def run_result_to_dict(result: RunResult) -> dict:
    return {
        "version": FORMAT_VERSION,
        "belief": factored_belief_to_dict(result.belief),
        "history": [
            round_record_to_dict(record) for record in result.history
        ],
    }


def run_result_from_dict(payload: dict) -> RunResult:
    belief = factored_belief_from_dict(_require(payload, "belief"))
    history = [
        round_record_from_dict(record)
        for record in _require(payload, "history")
    ]
    return RunResult(belief=belief, history=history)


def save_run_result(result: RunResult, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(run_result_to_dict(result), handle)
    return path


def load_run_result(path: str | Path) -> RunResult:
    with Path(path).open() as handle:
        return run_result_from_dict(json.load(handle))
