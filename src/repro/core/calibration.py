"""Worker-accuracy calibration with gold tasks (paper §II-A).

"The accuracy rates of each worker can be easily estimated with a set
of sample tasks with ground truth."  This module makes that step a
first-class, testable part of the pipeline instead of an assumption:

* :func:`calibrate_crowd` re-estimates every worker's accuracy from
  their answers to gold (known-truth) facts;
* :func:`simulate_calibration` samples such gold answers under the true
  error model, producing the *estimated* crowd an operator would
  actually work with;
* :func:`split_with_calibration` performs the theta-split on estimated
  accuracies and reports the tiering errors (true experts demoted to
  CP, true preliminary workers promoted to CE) — the practical risk the
  paper's Definition 1 glosses over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .workers import Crowd, Worker, clamp_accuracy, estimate_accuracy


def calibrate_crowd(
    gold_answers: Mapping[str, Sequence[bool]],
    gold_truth: Sequence[bool],
    smoothing: float = 1.0,
    default_accuracy: float = 0.5,
) -> Crowd:
    """Build a crowd whose accuracies come from gold-task answers.

    Parameters
    ----------
    gold_answers:
        ``worker_id -> answers`` on the gold facts, parallel to
        ``gold_truth``.  Workers may have answered any prefix of the
        gold set (shorter sequences are allowed).
    gold_truth:
        The gold facts' true labels.
    smoothing:
        Laplace smoothing passed to :func:`estimate_accuracy`.
    default_accuracy:
        Accuracy assigned to workers with no gold answers.  Clamped
        into the same epsilon-open interval as the estimates, so every
        accuracy leaving calibration is safe to feed likelihoods.
    """
    if not 0.0 <= default_accuracy <= 1.0:
        raise ValueError(
            f"default_accuracy must lie in [0, 1], got {default_accuracy}"
        )
    workers = []
    for worker_id, answers in gold_answers.items():
        if len(answers) > len(gold_truth):
            raise ValueError(
                f"worker {worker_id!r} answered more gold facts than exist"
            )
        if answers:
            accuracy = estimate_accuracy(
                list(answers), list(gold_truth[: len(answers)]),
                smoothing=smoothing,
            )
        else:
            accuracy = clamp_accuracy(default_accuracy)
        workers.append(Worker(worker_id=worker_id, accuracy=accuracy))
    return Crowd(workers)


def simulate_calibration(
    true_crowd: Crowd,
    num_gold: int,
    rng: np.random.Generator | int | None = None,
    smoothing: float = 1.0,
) -> Crowd:
    """The estimated crowd after a simulated gold-task calibration.

    Each worker answers ``num_gold`` gold facts under their true
    symmetric error model; accuracies are then re-estimated from those
    answers.  Worker order and ids are preserved, so the result is a
    drop-in replacement for ``true_crowd`` downstream.
    """
    if num_gold < 1:
        raise ValueError("num_gold must be >= 1")
    rng = np.random.default_rng(rng)
    gold_truth = rng.random(num_gold) < 0.5
    gold_answers: dict[str, list[bool]] = {}
    for worker in true_crowd:
        correct = rng.random(num_gold) < worker.accuracy
        answers = np.where(correct, gold_truth, ~gold_truth)
        gold_answers[worker.worker_id] = [bool(a) for a in answers]
    return calibrate_crowd(
        gold_answers, [bool(t) for t in gold_truth], smoothing=smoothing
    )


@dataclass(frozen=True)
class TieringReport:
    """Outcome of a theta-split on estimated accuracies vs the truth."""

    estimated_experts: Crowd
    estimated_preliminary: Crowd
    #: True experts (by true accuracy) estimated below theta.
    demoted_expert_ids: tuple[str, ...]
    #: True preliminary workers estimated at or above theta.
    promoted_preliminary_ids: tuple[str, ...]

    @property
    def num_tiering_errors(self) -> int:
        return len(self.demoted_expert_ids) + len(
            self.promoted_preliminary_ids
        )


def split_with_calibration(
    true_crowd: Crowd,
    theta: float,
    num_gold: int,
    rng: np.random.Generator | int | None = None,
    smoothing: float = 1.0,
) -> TieringReport:
    """Simulate calibration, split on estimated accuracies, report errors.

    The returned tiers carry the *estimated* accuracies (what the
    operator knows); the error lists compare against the true tiering.
    """
    estimated = simulate_calibration(
        true_crowd, num_gold, rng=rng, smoothing=smoothing
    )
    estimated_experts, estimated_preliminary = estimated.split(theta)
    true_experts, _true_preliminary = true_crowd.split(theta)
    true_expert_ids = set(true_experts.worker_ids)
    estimated_expert_ids = set(estimated_experts.worker_ids)
    demoted = tuple(
        sorted(true_expert_ids - estimated_expert_ids)
    )
    promoted = tuple(
        sorted(estimated_expert_ids - true_expert_ids)
    )
    return TieringReport(
        estimated_experts=estimated_experts,
        estimated_preliminary=estimated_preliminary,
        demoted_expert_ids=demoted,
        promoted_preliminary_ids=promoted,
    )
