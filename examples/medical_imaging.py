"""Medical-imaging label checking with a radiologist panel.

The paper's introduction motivates HC with the CheXpert setting: X-ray
images labeled by many ordinary crowdsourcing doctors, with a small
panel of expert radiologists deciding the hard cases.  This example
models exactly that:

* each "study" is a group of 4 correlated findings (e.g. cardiomegaly,
  edema, consolidation, effusion on one patient's image);
* a crowd of 30 ordinary doctors (accuracy 0.65-0.85) produces the
  preliminary labels, aggregated with Dawid-Skene;
* a 3-radiologist panel (accuracy 0.95-0.99) checks the labels chosen
  by the greedy selector, and — as the section III-D extension — a
  second, even smaller senior panel reviews what is left.

Run:  python examples/medical_imaging.py
"""

import numpy as np

from repro.aggregation import DawidSkene
from repro.core import Crowd, Worker, run_tiered_checking, total_quality
from repro.datasets import (
    WorkerPoolSpec,
    initialize_belief,
    make_synthetic_dataset,
)
from repro.simulation import SimulatedExpertPanel

FINDINGS = ("cardiomegaly", "edema", "consolidation", "effusion")


def main() -> None:
    # Ordinary doctors + the junior radiologist tier live in one pool so
    # the dataset generator records preliminary answers from the former.
    pool = WorkerPoolSpec(
        num_preliminary=30,
        num_expert=3,
        preliminary_accuracy=(0.65, 0.85),
        expert_accuracy=(0.93, 0.97),
    )
    dataset = make_synthetic_dataset(
        num_groups=50,
        group_size=len(FINDINGS),
        answers_per_fact=6,
        pool=pool,
        seed=11,
        name="chest-xray",
    )
    print(dataset)

    # Tier 0: aggregate the ordinary doctors' labels with Dawid-Skene.
    belief, init_result = initialize_belief(
        dataset, DawidSkene(), theta=0.9
    )
    truth_vector = dataset.truth_vector()
    print(f"DS initialization accuracy: "
          f"{init_result.accuracy(truth_vector):.4f}, "
          f"quality {total_quality(belief):.2f}")

    # Tier 1: the junior radiologist panel (from the dataset's pool).
    junior_panel, _ordinary = dataset.split_crowd(0.9)
    # Tier 2: two senior radiologists, modeled as near-oracles.
    senior_panel = Crowd(
        [Worker("senior_a", 0.99), Worker("senior_b", 0.985)]
    )

    panel_source = SimulatedExpertPanel(
        dataset.ground_truth, rng=np.random.default_rng(5)
    )
    results = run_tiered_checking(
        belief,
        tiers=[junior_panel, senior_panel],
        answer_source=panel_source,
        budget_per_tier=[240, 60],
        k=2,
        ground_truth=dataset.ground_truth,
    )

    for tier_name, result in zip(("junior panel", "senior panel"), results):
        first, last = result.history[0], result.history[-1]
        print(f"{tier_name}: accuracy {first.accuracy:.4f} -> "
              f"{last.accuracy:.4f}, quality {first.quality:.2f} -> "
              f"{last.quality:.2f} "
              f"({len(result.history) - 1} rounds)")

    final_labels = results[-1].final_labels
    flagged = [
        fact_id for fact_id, label in final_labels.items()
        if label != dataset.ground_truth[fact_id]
    ]
    print(f"Residual label errors after both panels: {len(flagged)} "
          f"of {dataset.num_facts}")

    # Show one study's final read.
    study = dataset.groups[0]
    print("\nStudy 0 final read:")
    for fact, finding in zip(study, FINDINGS):
        verdict = "present" if final_labels[fact.fact_id] else "absent"
        print(f"  {finding:>13}: {verdict}")


if __name__ == "__main__":
    main()
