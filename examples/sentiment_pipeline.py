"""Full HC pipeline on the company-sentiment corpus (paper section IV-A).

Generates the sentiment stand-in dataset (200 tasks x 5 correlated
tweets, 8 crowd answers each), initializes the belief with EBCC on the
preliminary workers' answers, and runs the hierarchical checking loop
with the greedy selector — printing the accuracy/quality trajectory the
paper's Figure 2 plots for HC.

Run:  python examples/sentiment_pipeline.py [--small]
"""

import argparse

from repro.datasets import (
    describe_dataset,
    format_summary,
    make_sentiment_dataset,
)
from repro.experiments.config import EXPERIMENT_POOL
from repro.simulation import SessionConfig, run_hc_session


def main(small: bool = False) -> None:
    num_groups = 40 if small else 200
    budget = 200 if small else 1000

    dataset = make_sentiment_dataset(
        num_groups=num_groups, group_size=5, answers_per_fact=8,
        pool=EXPERIMENT_POOL, seed=0,
    )
    print(format_summary(describe_dataset(dataset, theta=0.9)))
    sample = dataset.groups[0][0]
    print(f"Example checking query: {sample.query_text()}\n")

    config = SessionConfig(theta=0.9, k=1, budget=budget,
                           initializer="EBCC", seed=0)
    result = run_hc_session(dataset, config)

    print(f"{'budget':>8}  {'accuracy':>8}  {'quality':>9}")
    step = max(1, len(result.history) // 12)
    for record in result.history[::step]:
        print(f"{record.budget_spent:8.0f}  {record.accuracy:8.4f}  "
              f"{record.quality:9.2f}")
    final = result.history[-1]
    print(f"{final.budget_spent:8.0f}  {final.accuracy:8.4f}  "
          f"{final.quality:9.2f}  (final)")

    initial = result.history[0]
    print(f"\nAccuracy {initial.accuracy:.4f} -> {final.accuracy:.4f}, "
          f"quality {initial.quality:.2f} -> {final.quality:.2f} "
          f"after {len(result.history) - 1} checking rounds.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true",
                        help="run a reduced-size configuration")
    main(small=parser.parse_args().small)
