"""A streamed labeling campaign that survives chaos and a kill.

Batch campaigns see the whole preliminary answer matrix up front.  This
example runs the streaming alternative end to end: facts, preliminary
votes and expert churn arrive as a seeded event log, delivery is
degraded (reordered, duplicated, stalled), task groups seal
incrementally as their votes land — or by straggler timeout when the
watermark says the missing votes are not coming — and the checking
session grows mid-campaign as groups appear.

Like :mod:`examples.resumable_campaign`, the run happens in two
"process lifetimes": the first consumes part of the stream and stops
(standing in for a crash at an event boundary), the second resumes from
the journal and drains the stream.  Because every checkpoint carries
the stream cursor, dedup state, watermark and partial groups, the
continued journal is byte-identical to an uninterrupted run.

Run:  python examples/streaming_campaign.py
"""

import tempfile
from pathlib import Path

from repro.datasets import make_synthetic_dataset
from repro.stream import (
    StreamChaos,
    StreamSpec,
    StreamingCampaign,
    generate_event_stream,
    make_arrivals,
)

BUDGET = 40.0

SPEC = StreamSpec(
    arrival="bursty",
    rate=80.0,
    votes_per_fact=3,
    group_size=3,
    target_votes=2,
    churn=0.1,
    seed=7,
    chaos=StreamChaos(reorder=0.15, duplicate=0.1, stall=0.05, seed=3),
)


def make_inputs():
    """Both lifetimes rebuild the same event log from the same seed;
    the journal pins everything else."""
    dataset = make_synthetic_dataset(
        num_groups=4, group_size=3, answers_per_fact=6, seed=1
    )
    events = generate_event_stream(
        dataset,
        theta=SPEC.theta,
        votes_per_fact=SPEC.votes_per_fact,
        arrivals=make_arrivals(SPEC.arrival, SPEC.rate),
        seed=SPEC.seed,
        churn_rate=SPEC.churn,
        window=SPEC.window,
    )
    experts, _ = dataset.split_crowd(SPEC.theta)
    return dataset, events, experts


def first_lifetime(journal_path: Path) -> None:
    """Consume half the degraded stream, then 'die' at a boundary."""
    _, events, experts = make_inputs()
    campaign = StreamingCampaign(
        events, experts, BUDGET, spec=SPEC, journal_path=journal_path
    )
    campaign.run(max_events=campaign.total_deliveries // 2)
    stats = campaign.stats()
    print(
        f"lifetime 1: consumed {stats['cursor']}/{stats['deliveries']} "
        f"deliveries ({stats['duplicates']} duplicates dropped, "
        f"{stats['groups_sealed']} groups sealed, "
        f"watermark {stats['watermark']:.2f}s)"
    )
    print("lifetime 1: killed mid-stream")


def second_lifetime(journal_path: Path) -> None:
    """Resume from the journal alone and drain the stream."""
    dataset, events, experts = make_inputs()
    campaign = StreamingCampaign.resume(
        journal_path, events, experts=experts
    )
    campaign.run()
    stats = campaign.stats()
    print(
        f"lifetime 2: resumed and drained the stream "
        f"({stats['admitted']} events admitted, "
        f"{stats['groups_sealed']} groups sealed, "
        f"{stats['forced_seals']} by straggler timeout, "
        f"{stats['out_of_band']} late votes folded in out-of-band)"
    )
    print(
        f"lifetime 2: churn {stats['joins']} joins / "
        f"{stats['leaves']} leaves through the trust supervisor"
    )
    result = campaign.result()
    labels = result.final_labels
    correct = sum(
        labels[fact_id] == dataset.ground_truth[fact_id]
        for fact_id in labels
    )
    print(
        f"final: {len(labels)} facts labeled, "
        f"{correct}/{len(labels)} correct, "
        f"budget spent {campaign.spent_budget:.1f}/{BUDGET:.0f}"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "stream.jsonl"
        first_lifetime(journal_path)
        second_lifetime(journal_path)


if __name__ == "__main__":
    main()
