"""Multi-class labeling with the one-hot decomposition (paper §II-A).

The paper notes that an m-class labeling task splits into m correlated
binary facts.  This example tags animal photos with one of four
classes, aggregates a noisy crowd's per-class Yes/No answers with
Dawid-Skene, builds the belief *on the one-hot simplex* (exactly one
class true per task), and drives the checking loop through the sans-IO
:class:`OnlineCheckingSession` — the integration surface a real
crowdsourcing platform would use.

Run:  python examples/multiclass_checking.py
"""

from repro.aggregation import DawidSkene
from repro.core import GreedySelector
from repro.datasets import (
    WorkerPoolSpec,
    build_one_hot_belief,
    class_accuracy,
    make_multiclass_dataset,
)
from repro.simulation import OnlineCheckingSession, SimulatedExpertPanel

CLASSES = ("cat", "dog", "bird", "fish")


def main() -> None:
    dataset = make_multiclass_dataset(
        num_tasks=60,
        num_classes=len(CLASSES),
        answers_per_fact=6,
        class_names=CLASSES,
        pool=WorkerPoolSpec(
            num_preliminary=25,
            num_expert=3,
            preliminary_accuracy=(0.62, 0.85),
            expert_accuracy=(0.92, 0.97),
        ),
        seed=7,
    )
    class_truth = dataset.metadata["class_truth"]
    print(dataset)
    print(f"Classes: {', '.join(CLASSES)}")

    # Aggregate the preliminary crowd's binary answers, then place the
    # belief on the one-hot simplex: "exactly one class per photo".
    aggregation = DawidSkene().fit(dataset.preliminary_annotations(0.9))
    belief = build_one_hot_belief(dataset, aggregation.posteriors[:, 1])
    print(f"Initial class accuracy: "
          f"{class_accuracy(belief, class_truth):.4f}")

    # Drive the checking loop step by step, the way a platform would:
    # select -> (humans answer) -> submit.
    experts, _ = dataset.split_crowd(0.9)
    session = OnlineCheckingSession(
        belief, experts, budget=240, selector=GreedySelector(),
        k=2, ground_truth=dataset.ground_truth,
    )
    panel = SimulatedExpertPanel(dataset.ground_truth, rng=7)
    while (queries := session.next_queries()) is not None:
        labels = [
            dataset.groups[
                belief.group_index_of(fact_id)
            ][fact_id % len(CLASSES)].label
            for fact_id in queries
        ]
        family = panel.collect(queries, experts)
        record = session.submit(family)
        if record.round_index % 10 == 0:
            print(f"  round {record.round_index:3d}: checked "
                  f"{labels}, quality {record.quality:8.2f}, "
                  f"fact accuracy {record.accuracy:.4f}")

    final_accuracy = class_accuracy(session.belief, class_truth)
    print(f"Final class accuracy: {final_accuracy:.4f} "
          f"after {len(session.history) - 1} rounds "
          f"({session.spent_budget:.0f} expert answers)")

    # Show a few decided photos.
    from repro.datasets import decode_class_labels

    predictions = decode_class_labels(session.belief)
    print("\nSample final reads:")
    for task in range(5):
        verdict = CLASSES[predictions[task]]
        truth = CLASSES[class_truth[task]]
        marker = "ok" if verdict == truth else "WRONG"
        print(f"  photo {task}: predicted {verdict:<4s} truth "
              f"{truth:<4s} [{marker}]")


if __name__ == "__main__":
    main()
