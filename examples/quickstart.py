"""Quickstart: the HC core model on the paper's running example.

Builds the belief state of Table I (three correlated facts), asks a
two-expert checking crowd which facts to verify, simulates their
answers, and applies the Bayesian update — the smallest end-to-end use
of the public API.

Run:  python examples/quickstart.py
"""

from repro.core import (
    BeliefState,
    Crowd,
    FactoredBelief,
    FactSet,
    GreedySelector,
    expected_quality_improvement,
    observation_entropy,
    quality,
    update_with_family,
)
from repro.simulation import SimulatedExpertPanel


def main() -> None:
    # --- the data: three correlated facts (paper Table I) -------------
    facts = FactSet.from_ids([1, 2, 3])
    belief = BeliefState.from_mapping(
        facts,
        {
            (False, False, False): 0.09,
            (True, False, False): 0.11,
            (False, True, False): 0.10,
            (True, True, False): 0.20,
            (False, False, True): 0.08,
            (True, False, True): 0.09,
            (False, True, True): 0.15,
            (True, True, True): 0.18,
        },
    )
    print("Marginals:",
          {f: round(belief.marginal(f), 2) for f in (1, 2, 3)})
    print(f"Initial quality Q = -H(O) = {quality(belief):.3f} bits")

    # --- the expert crowd CE ------------------------------------------
    experts = Crowd.from_accuracies([0.90, 0.95], prefix="expert")

    # --- checking-task selection (Algorithm 2) ------------------------
    factored = FactoredBelief([belief])
    selector = GreedySelector()
    chosen = selector.select(factored, experts, k=2)
    gain = expected_quality_improvement(belief, chosen, experts)
    print(f"Greedy selects facts {sorted(chosen)} "
          f"(expected quality gain {gain:.3f} bits)")

    # --- collect expert answers and update the belief -----------------
    ground_truth = {1: True, 2: True, 3: False}
    panel = SimulatedExpertPanel(ground_truth, rng=0)
    family = panel.collect(chosen, experts)
    for answer_set in family:
        print(f"  {answer_set.worker.worker_id} answered "
              f"{dict(answer_set.answers)}")

    posterior = update_with_family(belief, family)
    print(f"Posterior quality Q = {quality(posterior):.3f} bits "
          f"(entropy {observation_entropy(posterior):.3f})")
    print("MAP labels:", posterior.map_labels())
    print("Ground truth:", ground_truth)


if __name__ == "__main__":
    main()
