"""Trust supervision catching an expert who goes bad mid-campaign.

The paper assumes every checking-tier expert keeps their calibrated
accuracy for the whole campaign.  This example breaks that assumption:
one of three experts silently degrades to near-coin-flip right after
the first round.  Two campaigns run on identical answers:

* an *unsupervised* baseline, which keeps trusting the expert's
  declared accuracy and absorbs the poisoned answers;
* a *trust-supervised* session, which maintains a Beta posterior per
  worker (fed by seeded gold probes and MAP agreement), trips the
  degraded expert's circuit breaker, swaps in a reserve expert, and
  down-weights the remaining answers via the posterior mean.

Run:  python examples/degrading_expert.py
"""

from repro.core import BeliefState, Crowd, FactSet, FactoredBelief
from repro.core.trust import TrustPolicy, select_gold_probes
from repro.simulation import (
    DegradingExpertPanel,
    ResilientCheckingSession,
    RetryPolicy,
)

TRUTH = {i: (i % 2 == 0) for i in range(12)}
BUDGET = 72
PANEL_SEED = 4


def make_belief() -> FactoredBelief:
    """Six weakly-initialized two-fact groups (marginals lean 55/45)."""
    groups = []
    for g in range(6):
        ids = [2 * g, 2 * g + 1]
        marginals = [0.55 if TRUTH[i] else 0.45 for i in ids]
        groups.append(
            BeliefState.from_marginals(FactSet.from_ids(ids), marginals)
        )
    return FactoredBelief(groups)


def make_panel() -> DegradingExpertPanel:
    """Expert e0 answers at 5% accuracy from the second round on."""
    return DegradingExpertPanel(
        TRUTH,
        degraded_worker_id="e0",
        degraded_accuracy=0.05,
        degrade_after_collects=1,
        rng=PANEL_SEED,
    )


def run_campaign(trusted: bool):
    experts = Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e")
    reserve = Crowd.from_accuracies([0.93, 0.93], prefix="r")
    policy = gold = None
    if trusted:
        policy = TrustPolicy(probe_rate=0.8, min_observations=3.0, seed=1)
        gold = select_gold_probes(TRUTH, fraction=0.25, seed=1)
    session = ResilientCheckingSession(
        make_belief(),
        experts,
        BUDGET,
        k=2,
        ground_truth=TRUTH,
        retry_policy=RetryPolicy(max_attempts=5, max_reassignments=1),
        reserve_experts=reserve,
        trust_policy=policy,
        gold_facts=gold,
    )
    return session.run(make_panel())


def main() -> None:
    baseline = run_campaign(trusted=False)
    supervised = run_campaign(trusted=True)

    print(f"unsupervised baseline: accuracy "
          f"{baseline.history[-1].accuracy:.3f} after "
          f"{len(baseline.history) - 1} rounds")
    print(f"trust-supervised:      accuracy "
          f"{supervised.history[-1].accuracy:.3f} after "
          f"{len(supervised.history) - 1} rounds")

    print("\nsupervision incidents:")
    for event in supervised.incidents:
        if event.kind in ("drift", "quarantine", "probation", "readmit"):
            print(f"  round {event.round_index:>2} {event.kind:<10} "
                  f"{event.worker_id}: {event.detail}")

    report = supervised.trust
    print(f"\ntrust report: {report.quarantines} quarantine(s), "
          f"{report.readmissions} readmission(s)")
    for summary in report.workers:
        print(f"  {summary.worker_id}: declared {summary.declared:.2f} "
              f"-> posterior {summary.mean:.2f} "
              f"(lcb {summary.lcb:.2f}, breaker {summary.breaker_state})")


if __name__ == "__main__":
    main()
