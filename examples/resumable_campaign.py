"""A resumable checking campaign with JSON checkpoints.

Real expert panels answer over hours or days, so a checking campaign
must survive process restarts.  This example runs a campaign in two
"process lifetimes": the first selects queries, collects some answers
and checkpoints to disk mid-flight; the second restores the session
from the checkpoint and finishes the budget.

Run:  python examples/resumable_campaign.py
"""

import json
import tempfile
from pathlib import Path

from repro.aggregation import Ebcc
from repro.datasets import initialize_belief, make_sentiment_dataset
from repro.experiments.config import EXPERIMENT_POOL
from repro.simulation import OnlineCheckingSession, SimulatedExpertPanel


def first_lifetime(checkpoint_path: Path) -> None:
    """Start the campaign, answer a few rounds, checkpoint, 'crash'."""
    dataset = make_sentiment_dataset(
        num_groups=30, pool=EXPERIMENT_POOL, seed=4
    )
    belief, _ = initialize_belief(dataset, Ebcc(), theta=0.9)
    experts, _ = dataset.split_crowd(0.9)
    session = OnlineCheckingSession(
        belief, experts, budget=120, ground_truth=dataset.ground_truth
    )
    panel = SimulatedExpertPanel(dataset.ground_truth, rng=4)

    for _round in range(10):
        queries = session.next_queries()
        if queries is None:
            break
        session.submit(panel.collect(queries, experts))

    last = session.history[-1]
    print(f"[lifetime 1] {len(session.history) - 1} rounds, "
          f"spent {session.spent_budget:.0f}/120, "
          f"accuracy {last.accuracy:.4f}, quality {last.quality:.2f}")
    checkpoint_path.write_text(json.dumps(session.to_checkpoint()))
    print(f"[lifetime 1] checkpointed to {checkpoint_path.name} "
          f"({checkpoint_path.stat().st_size} bytes); exiting")


def second_lifetime(checkpoint_path: Path) -> None:
    """Restore from the checkpoint and finish the budget."""
    # Rebuild the behavioral components (code, not state): the same
    # dataset seed gives back the same crowd and ground truth.
    dataset = make_sentiment_dataset(
        num_groups=30, pool=EXPERIMENT_POOL, seed=4
    )
    experts, _ = dataset.split_crowd(0.9)
    payload = json.loads(checkpoint_path.read_text())
    session = OnlineCheckingSession.from_checkpoint(payload, experts)
    print(f"[lifetime 2] restored at spent={session.spent_budget:.0f}, "
          f"{len(session.history) - 1} rounds of history")

    panel = SimulatedExpertPanel(dataset.ground_truth, rng=5)
    while (queries := session.next_queries()) is not None:
        session.submit(panel.collect(queries, experts))

    last = session.history[-1]
    print(f"[lifetime 2] finished: {len(session.history) - 1} rounds "
          f"total, accuracy {last.accuracy:.4f}, "
          f"quality {last.quality:.2f}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_path = Path(tmp) / "campaign.checkpoint.json"
        first_lifetime(checkpoint_path)
        second_lifetime(checkpoint_path)


if __name__ == "__main__":
    main()
