"""A crash-safe checking campaign with a fault-injected crowd.

Real expert panels answer over hours or days, workers no-show, and the
collecting process can die mid-write.  This example runs a campaign in
two "process lifetimes": the first drives a fault-tolerant
:class:`~repro.simulation.ResilientCheckingSession` against a chaotic
crowd while journaling every state transition, then crashes mid-run —
including a torn final journal line, the signature of a process killed
mid-append.  The second lifetime resumes from the journal and finishes
the budget; because the simulated panel's RNG state is journaled too,
the continuation is exactly the run the crash interrupted.

Run:  python examples/resumable_campaign.py
"""

import tempfile
from pathlib import Path

from repro.aggregation import Ebcc
from repro.datasets import initialize_belief, make_sentiment_dataset
from repro.experiments.config import EXPERIMENT_POOL
from repro.simulation import (
    FaultModel,
    FaultyExpertPanel,
    ResilientCheckingSession,
    RetryPolicy,
    SimulatedExpertPanel,
)

FAULTS = FaultModel(no_show=0.15, timeout=0.1, partial=0.1, seed=4)
RETRY = RetryPolicy(max_attempts=4, max_reassignments=0)


def make_panel(dataset) -> FaultyExpertPanel:
    """The chaotic crowd: both lifetimes build it identically; the
    journal rewinds its RNG state to wherever the crash left it."""
    return FaultyExpertPanel(
        SimulatedExpertPanel(dataset.ground_truth, rng=4), FAULTS
    )


def first_lifetime(journal_path: Path) -> None:
    """Start the campaign, survive some faults, crash mid-run."""
    dataset = make_sentiment_dataset(
        num_groups=30, pool=EXPERIMENT_POOL, seed=4
    )
    belief, _ = initialize_belief(dataset, Ebcc(), theta=0.9)
    experts, _ = dataset.split_crowd(0.9)
    session = ResilientCheckingSession(
        belief,
        experts,
        budget=120,
        ground_truth=dataset.ground_truth,
        retry_policy=RETRY,
        journal_path=journal_path,
    )
    session.run(make_panel(dataset), max_rounds=10)

    last = session.history[-1]
    incidents = ", ".join(
        sorted({event.kind for event in session.incidents})
    ) or "none"
    print(f"[lifetime 1] {len(session.history) - 1} rounds, "
          f"spent {session.spent_budget:.0f}/120, "
          f"accuracy {last.accuracy:.4f}, incidents: {incidents}")

    # Inject the crash: the process dies mid-append, leaving a torn
    # final line in the journal.  read_journal() discards it on resume.
    raw = journal_path.read_bytes()
    journal_path.write_bytes(raw[:-25])
    print(f"[lifetime 1] crashed mid-write "
          f"({journal_path.stat().st_size} bytes of journal survive)")


def second_lifetime(journal_path: Path) -> None:
    """Resume from the journal and finish the budget."""
    # Rebuild the behavioral components (code, not state): the same
    # dataset seed gives back the same ground truth and panel.
    dataset = make_sentiment_dataset(
        num_groups=30, pool=EXPERIMENT_POOL, seed=4
    )
    session = ResilientCheckingSession.resume(
        journal_path, retry_policy=RETRY
    )
    print(f"[lifetime 2] resumed at spent={session.spent_budget:.0f}, "
          f"{len(session.history) - 1} rounds of history")

    result = session.run(make_panel(dataset))
    last = result.history[-1]
    print(f"[lifetime 2] finished: {len(result.history) - 1} rounds "
          f"total, accuracy {last.accuracy:.4f}, "
          f"quality {last.quality:.2f}, "
          f"{len(result.incidents)} incidents survived")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "campaign.jsonl"
        first_lifetime(journal_path)
        second_lifetime(journal_path)


if __name__ == "__main__":
    main()
