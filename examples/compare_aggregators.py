"""Compare the eight truth-inference baselines head-to-head.

Runs MV, DS, ZC, GLAD, CRH, BWA, BCC and EBCC on the same synthetic
crowd answers at three redundancy levels and prints their accuracies —
a miniature of the paper's Figure 2 baseline comparison, and a sanity
check that redundancy-hungry models (CRH, BWA) lag at low redundancy
while confusion-matrix models (DS, BCC, EBCC) lead.

Run:  python examples/compare_aggregators.py
"""

from repro.aggregation import BASELINE_NAMES, make_aggregator
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.experiments import format_table

#: The paper's eight baselines plus the classic extras in this repo.
METHODS = BASELINE_NAMES + ("KOS", "SPECTRAL", "MV-BETA")


def main() -> None:
    redundancies = (3, 5, 8)
    pool = WorkerPoolSpec(
        num_preliminary=35,
        num_expert=5,
        preliminary_accuracy=(0.55, 0.8),
        expert_accuracy=(0.85, 0.95),
    )

    rows = []
    for name in METHODS:
        row = [name]
        for redundancy in redundancies:
            dataset = make_synthetic_dataset(
                num_groups=100,
                group_size=5,
                answers_per_fact=redundancy,
                pool=pool,
                seed=2024,
            )
            aggregator = make_aggregator(name)
            result = aggregator.fit(dataset.annotations)
            row.append(f"{result.accuracy(dataset.truth_vector()):.4f}")
        rows.append(row)

    header = ["method"] + [f"{r} answers/task" for r in redundancies]
    print("Truth-inference accuracy vs redundancy "
          "(500 binary facts, mixed crowd)\n")
    print(format_table(header, rows))


if __name__ == "__main__":
    main()
